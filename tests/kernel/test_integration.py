"""End-to-end integration scenarios across the whole stack.

Each scenario interleaves several processes, the Unix server, the buffer
cache, disk DMA and fork/exec — with the staleness oracle checking every
transferred value — and then verifies the *semantic* outcome (file
contents on the platter, process isolation) independently.
"""

import numpy as np
import pytest

from repro.hw.params import MachineConfig
from repro.kernel.disk import synthetic_block
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess, fresh_tokens
from repro.vm.policy import CONFIG_A, CONFIG_F, CONFIG_GLOBAL


def make_kernel(policy=CONFIG_F, phys_pages=320):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=phys_pages))


class TestMultiProcessFileSharing:
    @pytest.mark.parametrize("policy", [CONFIG_A, CONFIG_F, CONFIG_GLOBAL],
                             ids=["old", "new", "global"])
    def test_producer_consumer_through_the_file_system(self, policy):
        kernel = make_kernel(policy)
        producer = UserProcess(kernel, "producer")
        consumer = UserProcess(kernel, "consumer")
        producer.create("/pipe/data")
        fd_w = producer.open("/pipe/data")
        pages = [fresh_tokens(1024) for _ in range(4)]
        for i, values in enumerate(pages):
            producer.write_file_page(fd_w, i, values)
            # The consumer reads each page as soon as it is written —
            # served out of the (dirty) buffer cache, not the disk.
            fd_r = consumer.open("/pipe/data")
            got = consumer.read_file_page(fd_r, i)
            assert np.array_equal(got, values)
            consumer.close(fd_r)
        producer.close(fd_w)
        kernel.shutdown()
        meta = kernel.fs.lookup("/pipe/data")
        for i, values in enumerate(pages):
            assert np.array_equal(kernel.disk.block(meta.file_id, i), values)

    def test_interleaved_syscalls_from_many_processes(self):
        kernel = make_kernel()
        procs = [UserProcess(kernel, f"p{i}") for i in range(4)]
        kernel.fs.create("/shared/input", size_pages=2, on_disk=True)
        for round_number in range(3):
            for i, proc in enumerate(procs):
                fd = proc.open("/shared/input")
                proc.read_file_page(fd, round_number % 2)
                proc.close(fd)
                proc.create(f"/out/p{i}/r{round_number}")
                ofd = proc.open(f"/out/p{i}/r{round_number}")
                proc.write_file_page(ofd, 0)
                proc.close(ofd)
        for proc in procs:
            proc.exit()
        kernel.shutdown()
        assert kernel.machine.oracle.clean
        assert kernel.fs.file_count() == 1 + 12

    def test_overwriting_a_file_page_repeatedly(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "w")
        proc.create("/log")
        fd = proc.open("/log")
        final = None
        for _ in range(10):
            final = fresh_tokens(1024)
            proc.write_file_page(fd, 0, final)
        proc.close(fd)
        kernel.shutdown()
        meta = kernel.fs.lookup("/log")
        assert np.array_equal(kernel.disk.block(meta.file_id, 0), final)


class TestProcessTrees:
    def test_three_generation_fork_chain(self):
        kernel = make_kernel()
        grandparent = UserProcess(kernel, "gp")
        vpage = grandparent.task.allocate_anon(1)
        grandparent.task.write(vpage, 0, 1)
        from repro.kernel.task import fork_task
        parent_task = fork_task(kernel, grandparent.task, "parent")
        child_task = fork_task(kernel, parent_task, "child")
        # Everyone shares until someone writes.
        assert parent_task.read(vpage, 0) == 1
        assert child_task.read(vpage, 0) == 1
        child_task.write(vpage, 0, 3)
        parent_task.write(vpage, 0, 2)
        assert grandparent.task.read(vpage, 0) == 1
        assert parent_task.read(vpage, 0) == 2
        assert child_task.read(vpage, 0) == 3

    def test_compile_farm(self):
        # A shell spawning several compilers concurrently-ish, all reading
        # shared headers and writing distinct objects.
        kernel = make_kernel()
        shell = UserProcess(kernel, "sh")
        cc = kernel.exec_loader.register_program("cc", 3, 2)
        kernel.fs.create("/inc/common.h", size_pages=1, on_disk=True)
        children = [shell.spawn(cc, work_units=1) for _ in range(3)]
        for i, child in enumerate(children):
            hfd = child.open("/inc/common.h")
            child.read_file_page(hfd, 0)
            child.close(hfd)
            child.create(f"/obj/{i}.o")
            ofd = child.open(f"/obj/{i}.o")
            child.write_file_page(ofd, 0)
            child.close(ofd)
        for child in children:
            child.exit()
        shell.exit()
        kernel.shutdown()
        assert kernel.machine.oracle.clean
        assert kernel.machine.counters.d_to_i_copies >= 9  # 3 execs x 3 pages


class TestResourceAccounting:
    def test_no_frame_leak_across_process_lifecycles(self):
        kernel = make_kernel()
        kernel.fs.create("/data", size_pages=2, on_disk=True)
        baseline = None
        for round_number in range(5):
            proc = UserProcess(kernel, f"p{round_number}")
            fd = proc.open("/data")
            proc.read_file_page(fd, 0)
            proc.read_file_page(fd, 1)
            proc.close(fd)
            proc.touch_memory(3)
            proc.exit()
            free_now = len(kernel.free_list)
            if baseline is None:
                baseline = free_now
            else:
                assert free_now == baseline   # steady state, no leak

    def test_elapsed_time_is_monotone_and_deterministic(self):
        def run():
            kernel = make_kernel()
            proc = UserProcess(kernel, "p")
            proc.create("/f")
            fd = proc.open("/f")
            for i in range(4):
                proc.write_file_page(fd, i)
            proc.close(fd)
            kernel.shutdown()
            return kernel.machine.clock.cycles

        assert run() == run()

    def test_file_contents_bitexact_across_policies(self):
        # Different policies change *when* cache operations happen, never
        # what data ends up on disk.
        platters = []
        for policy in (CONFIG_A, CONFIG_F):
            kernel = make_kernel(policy)
            kernel.fs.create("/in", size_pages=2, on_disk=True)
            proc = UserProcess(kernel, "p")
            proc.copy_file("/in", "/out")
            kernel.shutdown()
            meta = kernel.fs.lookup("/out")
            platters.append([kernel.disk.block(meta.file_id, i)
                             for i in range(2)])
        for a, b in zip(*platters):
            assert np.array_equal(a, b)
