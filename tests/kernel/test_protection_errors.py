"""Tests for genuine protection violations (not consistency traps)."""

import pytest

from repro.errors import ProtectionError
from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.policy import CONFIG_F
from repro.vm.vm_object import VMObject


@pytest.fixture
def kernel():
    return Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=128))


class TestRealViolations:
    def test_write_to_read_only_shared_page(self, kernel):
        proc = UserProcess(kernel, "p")
        writer = UserProcess(kernel, "writer")
        obj = VMObject(1)
        w_vpage = writer.task.map_shared(obj, Prot.READ_WRITE)
        writer.task.write(w_vpage, 0, 1)          # materialize the frame
        r_vpage = proc.task.map_shared(obj, Prot.READ)
        assert proc.task.read(r_vpage, 0) == 1
        with pytest.raises(ProtectionError):
            proc.task.write(r_vpage, 0, 2)

    def test_segfault_outside_any_mapping(self, kernel):
        proc = UserProcess(kernel, "p")
        with pytest.raises(ProtectionError, match="segmentation fault"):
            proc.task.read(4000)

    def test_execute_of_data_page_rejected(self, kernel):
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 1)
        with pytest.raises(ProtectionError):
            proc.task.ifetch(vpage)

    def test_write_to_program_text_rejected(self, kernel):
        program = kernel.exec_loader.register_program("prog", 1, 1)
        proc = UserProcess(kernel, "p")
        text, _ = kernel.exec_loader.exec_into(proc.task, program)
        proc.task.ifetch(text)                    # fault the text in
        with pytest.raises(ProtectionError):
            proc.task.write(text, 0, 0xBAD)

    def test_access_after_unmap_segfaults(self, kernel):
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 1)
        proc.task.unmap(vpage)
        with pytest.raises(ProtectionError):
            proc.task.read(vpage, 0)

    def test_violation_does_not_corrupt_the_system(self, kernel):
        # After a caught violation, the system keeps running consistently.
        proc = UserProcess(kernel, "p")
        with pytest.raises(ProtectionError):
            proc.task.read(4000)
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 5)
        assert proc.task.read(vpage, 0) == 5
        assert kernel.machine.oracle.clean
