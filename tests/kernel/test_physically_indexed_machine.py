"""System-level tests on a physically indexed machine (Section 3.3).

With physical indexing every alias selects the same cache location, so
the alias machinery idles: no consistency faults from sharing, no
alias flushes — only the DMA and data→instruction obligations remain.
The same kernel, policies and workloads run unchanged.
"""

import pytest

from repro.hw.params import CacheGeometry, MachineConfig
from repro.hw.stats import FaultKind, Reason
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.policy import CONFIG_A, CONFIG_B, CONFIG_F
from repro.vm.vm_object import VMObject


def pi_machine(phys_pages=256):
    return MachineConfig(
        dcache=CacheGeometry(size=256 * 1024, physically_indexed=True),
        icache=CacheGeometry(size=128 * 1024, physically_indexed=True),
        phys_pages=phys_pages)


def make_kernel(policy=CONFIG_F):
    return Kernel(policy=policy, config=pi_machine())


class TestAliasesAlwaysAlign:
    def test_unaligned_virtual_addresses_share_one_line(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        obj = VMObject(1)
        va1 = proc.task.map_shared(obj, Prot.READ_WRITE, color=1)
        va2 = proc.task.map_shared(obj, Prot.READ_WRITE, color=2)
        proc.task.write(va1, 0, 1)
        proc.task.read(va2, 0)
        proc.task.write(va1, 0, 2)
        before = kernel.machine.counters.faults[FaultKind.CONSISTENCY]
        f0 = kernel.machine.counters.total_flushes("dcache")
        for i in range(50):
            proc.task.write(va1, 0, i)
            assert proc.task.read(va2, 0) == i
        assert kernel.machine.counters.faults[FaultKind.CONSISTENCY] == before
        assert kernel.machine.counters.total_flushes("dcache") == f0

    def test_even_the_lazy_unaligned_policy_pays_nothing(self):
        # Configuration B has no alignment machinery, yet on physically
        # indexed hardware there is nothing to align.
        from repro.workloads.afs_bench import AfsBench
        kernel = Kernel(policy=CONFIG_B, config=pi_machine())
        AfsBench(scale=0.25).run(kernel)
        kernel.shutdown()
        assert kernel.machine.oracle.clean
        # alias-driven flushes are absent; what remains is DMA + d->i
        counters = kernel.machine.counters
        alias_flushes = (counters.total_flushes("dcache", Reason.ALIAS_READ)
                         + counters.total_flushes("dcache",
                                                  Reason.ALIAS_WRITE))
        assert alias_flushes == 0


class TestRemainingObligations:
    def test_dma_still_needs_the_flush(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 0xABCD)
        frame = kernel.pmap.page_table(proc.task.asid).lookup(vpage).ppage
        kernel.disk.write_block(3, 0, frame)
        assert kernel.disk.block(3, 0)[0] == 0xABCD
        assert kernel.machine.counters.total_flushes(
            "dcache", Reason.DMA_READ) == 1

    def test_text_loading_still_copies_and_flushes(self):
        kernel = make_kernel()
        program = kernel.exec_loader.register_program("prog", 2, 1)
        proc = UserProcess(kernel, "p")
        child = proc.spawn(program)
        assert kernel.machine.counters.d_to_i_copies == 2
        child.exit()
        proc.exit()

    def test_workloads_clean_under_old_and_new(self):
        from repro.workloads.latex_bench import LatexBench
        for policy in (CONFIG_A, CONFIG_B, CONFIG_F):
            kernel = Kernel(policy=policy, config=pi_machine())
            LatexBench(scale=0.25).run(kernel)
            kernel.shutdown()
            assert kernel.machine.oracle.clean
