"""Tests for the pageout daemon and swapping under memory pressure."""

import pytest

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.pageout import SWAP_FILE_ID
from repro.kernel.process import UserProcess
from repro.vm.policy import CONFIG_A, CONFIG_F


def tight_kernel(policy=CONFIG_F, phys_pages=48):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=phys_pages),
                  buffer_cache_pages=8)


class TestSwapMechanics:
    def test_explicit_reclaim_frees_frames(self):
        kernel = tight_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(6)
        for i in range(6):
            proc.task.write(vpage + i, 0, 100 + i)
        free_before = len(kernel.free_list)
        freed = kernel.pageout.reclaim(3)
        assert freed == 3
        assert len(kernel.free_list) == free_before + 3
        assert kernel.pageout.pages_swapped_out == 3

    def test_swapped_data_survives_the_round_trip(self):
        kernel = tight_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(6)
        for i in range(6):
            proc.task.write(vpage + i, 3, 200 + i)
        kernel.pageout.reclaim(6)
        assert kernel.pageout.pages_swapped_out == 6
        # Touching the pages swaps them back in with the right contents
        # (and the oracle cross-checks every word transferred).
        for i in range(6):
            assert proc.task.read(vpage + i, 3) == 200 + i
        assert kernel.pageout.pages_swapped_in == 6

    def test_swap_out_flushes_dirty_cache_data(self):
        # The page's latest version exists only in the cache; the swap
        # write is a DMA-read and must see it (Section 2.4).
        kernel = tight_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 0xFEED)
        kernel.pageout.reclaim(1)
        slot_blocks = [kernel.disk.block(SWAP_FILE_ID, s)
                       for s in range(kernel.pageout.pages_swapped_out)]
        assert any(int(block[0]) == 0xFEED for block in slot_blocks)

    def test_mappings_are_broken_at_eviction(self):
        from repro.hw.stats import FaultKind
        kernel = tight_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 1)
        kernel.pageout.reclaim(1)
        assert vpage not in kernel.pmap.page_table(proc.task.asid)
        faults_before = kernel.machine.counters.faults[FaultKind.MAPPING]
        proc.task.read(vpage, 0)   # page-in is a mapping fault
        assert (kernel.machine.counters.faults[FaultKind.MAPPING]
                > faults_before)


class TestMemoryPressure:
    def test_daemon_keeps_the_system_running_past_physical_memory(self):
        kernel = tight_kernel(phys_pages=40)
        proc = UserProcess(kernel, "p")
        # Touch more anonymous pages than the machine has frames; syscall
        # boundaries give the daemon a chance to reclaim.
        vpages = []
        for batch in range(10):
            vpage = proc.task.allocate_anon(4)
            for i in range(4):
                proc.task.write(vpage + i, 0, batch * 16 + i)
            vpages.append(vpage)
            proc.stat_target = None
            proc.create(f"/tick{batch}")   # op boundary: reclaim happens
        assert kernel.pageout.pages_swapped_out > 0
        # Every page still reads back correctly (some from swap).
        for batch, vpage in enumerate(vpages):
            for i in range(4):
                assert proc.task.read(vpage + i, 0) == batch * 16 + i
        assert kernel.machine.oracle.clean

    @pytest.mark.parametrize("policy", [CONFIG_A, CONFIG_F],
                             ids=["eager", "lazy"])
    def test_swapping_consistent_under_both_policies(self, policy):
        kernel = tight_kernel(policy=policy)
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(8)
        for i in range(8):
            proc.task.write(vpage + i, 0, i)
        kernel.pageout.reclaim(8)
        for i in range(8):
            assert proc.task.read(vpage + i, 0) == i
        assert kernel.machine.oracle.clean

    def test_cow_pages_swap_and_return_shared(self):
        from repro.kernel.task import fork_task
        kernel = tight_kernel()
        parent = UserProcess(kernel, "parent")
        vpage = parent.task.allocate_anon(1)
        parent.task.write(vpage, 0, 77)
        child_task = fork_task(kernel, parent.task)
        kernel.pageout.reclaim(1)
        assert kernel.pageout.pages_swapped_out >= 1
        # Both sides still see the shared value after page-in...
        assert parent.task.read(vpage, 0) == 77
        assert child_task.read(vpage, 0) == 77
        # ...and COW still isolates writes.
        child_task.write(vpage, 0, 78)
        assert parent.task.read(vpage, 0) == 77

    def test_cow_write_to_swapped_page_preserves_contents(self):
        # Regression: a swapped-out COW page must be brought back and
        # copied, not silently replaced with a zero page.
        from repro.kernel.task import fork_task
        kernel = tight_kernel()
        parent = UserProcess(kernel, "parent")
        vpage = parent.task.allocate_anon(1)
        parent.task.write(vpage, 5, 0xCAFE)
        child_task = fork_task(kernel, parent.task)
        kernel.pageout.reclaim(1)               # page lives only in swap now
        child_task.write(vpage, 0, 1)           # COW write before any read
        assert child_task.read(vpage, 5) == 0xCAFE   # old words preserved
        assert parent.task.read(vpage, 5) == 0xCAFE

    def test_dead_objects_are_skipped(self):
        kernel = tight_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(2)
        proc.task.write(vpage, 0, 1)
        proc.task.write(vpage + 1, 0, 2)
        proc.task.unmap(vpage, 2)           # object dies, frames freed
        assert kernel.pageout.reclaim(2) == 0

    def test_workload_survives_tight_memory(self):
        from repro.workloads.kernel_build import KernelBuild
        kernel = tight_kernel(phys_pages=96)
        KernelBuild(scale=0.2).run(kernel)
        kernel.shutdown()
        assert kernel.machine.oracle.clean
