"""The deterministic round-robin multi-CPU scheduler."""

import pytest

from repro.errors import ConfigurationError, KernelError
from repro.hw.params import small_machine
from repro.kernel.kernel import Kernel
from repro.kernel.scheduler import Scheduler


def make_kernel(n_cpus=4):
    return Kernel(config=small_machine(n_cpus=n_cpus, phys_pages=128),
                  buffer_cache_pages=8)


def step_counter(log, name, steps):
    for i in range(steps):
        log.append((name, i))
        yield


class TestPlacement:
    def test_round_robin_by_spawn_order(self):
        sched = Scheduler(make_kernel(3))
        tasklets = [sched.spawn(f"t{i}", iter(())) for i in range(5)]
        assert [t.cpu for t in tasklets] == [0, 1, 2, 0, 1]

    def test_explicit_cpu_respected(self):
        sched = Scheduler(make_kernel(4))
        assert sched.spawn("pinned", iter(()), cpu=3).cpu == 3

    def test_out_of_range_cpu_rejected(self):
        sched = Scheduler(make_kernel(2))
        with pytest.raises(ConfigurationError):
            sched.spawn("bad", iter(()), cpu=2)

    def test_uniprocessor_kernel_gives_one_queue(self):
        sched = Scheduler(Kernel(config=small_machine(phys_pages=128),
                                 buffer_cache_pages=8))
        assert sched.n_cpus == 1


class TestDispatch:
    def test_round_visits_cpus_in_order(self):
        log = []
        sched = Scheduler(make_kernel(3))
        for i in range(3):
            sched.spawn(f"t{i}", step_counter(log, f"t{i}", 2), cpu=i)
        sched.round()
        assert log == [("t0", 0), ("t1", 0), ("t2", 0)]

    def test_same_spawn_order_same_interleaving(self):
        def trace():
            log = []
            sched = Scheduler(make_kernel(2))
            sched.spawn("a", step_counter(log, "a", 3))
            sched.spawn("b", step_counter(log, "b", 2))
            sched.spawn("c", step_counter(log, "c", 4))
            sched.run()
            return log

        assert trace() == trace()

    def test_run_drains_everything(self):
        log = []
        sched = Scheduler(make_kernel(2))
        for i in range(4):
            sched.spawn(f"t{i}", step_counter(log, f"t{i}", 3))
        sched.run()
        assert sched.runnable == 0
        assert len(sched.finished) == 4
        assert all(t.done for t in sched.finished)
        assert len(log) == 12

    def test_max_rounds_bounds_dispatch(self):
        log = []
        sched = Scheduler(make_kernel(1))
        sched.spawn("long", step_counter(log, "long", 100))
        assert sched.run(max_rounds=5) == 5
        assert sched.runnable == 1

    def test_two_tasklets_share_one_cpu_round_robin(self):
        log = []
        sched = Scheduler(make_kernel(1))
        sched.spawn("a", step_counter(log, "a", 2), cpu=0)
        sched.spawn("b", step_counter(log, "b", 2), cpu=0)
        sched.run()
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]


class TestCpuBinding:
    def test_create_task_spreads_over_cpus(self):
        # asid 1 is the Unix server on CPU 0; user tasks continue the
        # (asid - 1) % n round-robin from CPU 1.
        kernel = make_kernel(3)
        tasks = [kernel.create_task(f"t{i}") for i in range(4)]
        assert [kernel.machine.cpu_of(t.asid) for t in tasks] == [1, 2, 0, 1]

    def test_explicit_binding_and_migration(self):
        kernel = make_kernel(4)
        task = kernel.create_task("pinned", cpu=2)
        assert kernel.machine.cpu_of(task.asid) == 2
        Scheduler(kernel).pin(task, 0)
        assert kernel.machine.cpu_of(task.asid) == 0

    def test_uniprocessor_rejects_nonzero_cpu(self):
        kernel = Kernel(config=small_machine(phys_pages=128),
                        buffer_cache_pages=8)
        with pytest.raises(KernelError):
            kernel.create_task("bad", cpu=1)

    def test_accesses_route_to_the_bound_cpu(self):
        kernel = make_kernel(2)
        task = kernel.create_task("t", cpu=1)
        vpage = task.allocate_anon(1)
        task.write(vpage, 0, 42)
        cluster = kernel.machine.cluster
        assert cluster.caches[1]._dirty.any()
        assert not cluster.caches[0]._dirty.any()
