"""Guard the public API surface: everything documented importable, every
``__all__`` honest."""

import importlib

import pytest

PACKAGES = ["repro", "repro.core", "repro.hw", "repro.vm", "repro.kernel",
            "repro.workloads", "repro.analysis", "repro.conformance",
            "repro.farm", "repro.trace"]


class TestPublicSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_quickstart_imports(self):
        from repro import (CONFIG_GLOBAL, CONFIG_LADDER, Kernel,  # noqa
                           MachineConfig, NEW_SYSTEM, OLD_SYSTEM,
                           StaleDataError, by_name, small_machine)

    def test_readme_snippet_runs(self):
        # The README's quickstart, verbatim in spirit.
        from repro import Kernel, NEW_SYSTEM
        from repro.kernel.process import UserProcess
        kernel = Kernel(policy=NEW_SYSTEM)
        kernel.fs.create("/f", size_pages=2, on_disk=True)
        proc = UserProcess(kernel, "demo")
        fd = proc.open("/f")
        data = proc.read_file_page(fd, 0)
        proc.close(fd)
        proc.exit()
        assert data.any()
        assert kernel.elapsed_seconds > 0
        assert "page_flushes" in kernel.machine.counters.snapshot()

    def test_version(self):
        import repro
        assert repro.__version__

    def test_policy_registry_is_complete(self):
        from repro import by_name
        for name in list("ABCDEF") + ["G", "CMU", "Utah", "Tut", "Apollo",
                                      "Sun"]:
            assert by_name(name).name.lower() == name.lower()
