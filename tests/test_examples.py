"""The examples must keep running: each is executed in-process.

(The slow full-evaluation example runs at a reduced scale.)
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "oracle:" in out and "0 stale" in out

    def test_shared_memory_aliases(self, capsys):
        run_example("shared_memory_aliases.py")
        out = capsys.readouterr().out
        assert "aligned" in out and "unaligned" in out

    def test_dma_io(self, capsys):
        run_example("dma_io.py")
        out = capsys.readouterr().out
        assert "oracle caught it" in out

    def test_other_architectures(self, capsys):
        run_example("other_architectures.py")
        out = capsys.readouterr().out
        assert "STALE!" in out
        assert "write-through" in out

    def test_extensions_tour(self, capsys):
        run_example("extensions_tour.py")
        out = capsys.readouterr().out
        assert "0 consistency faults" in out       # global AS
        assert "swapped out" in out                # pageout
        assert "flush + purge: 8" in out           # SMP demo

    def test_trace_tour(self, capsys):
        run_example("trace_tour.py")
        out = capsys.readouterr().out
        assert "configuration B" in out
        assert "configuration F" in out
        assert "flush" in out

    def test_policy_comparison_small_scale(self, capsys):
        run_example("policy_comparison.py", argv=["0.2"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 4" in out
        assert "Table 5" in out
        assert "slowdown" in out
