"""Tests for the policy configuration ladder and the Table 5 systems."""

import pytest

from repro.vm.policy import (CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D,
                             CONFIG_E, CONFIG_F, CONFIG_LADDER, NEW_SYSTEM,
                             OLD_SYSTEM, SYSTEM_TUT, TABLE5_SYSTEMS, by_name)


class TestLadder:
    def test_six_configurations_in_order(self):
        assert [c.name for c in CONFIG_LADDER] == list("ABCDEF")

    def test_a_is_eager_everything_else_lazy(self):
        assert not CONFIG_A.lazy_unmap
        assert CONFIG_A.eager_purge_stale
        assert CONFIG_A.eager_break_aliases
        for config in CONFIG_LADDER[1:]:
            assert config.lazy_unmap
            assert not config.eager_purge_stale

    def test_optimizations_are_cumulative(self):
        flags = ["align_ipc", "aligned_prepare", "opt_need_data",
                 "opt_will_overwrite"]
        enabled_counts = [sum(getattr(c, f) for f in flags)
                          for c in CONFIG_LADDER[1:]]
        assert enabled_counts == sorted(enabled_counts)

    def test_each_rung_adds_exactly_its_feature(self):
        assert CONFIG_C.align_ipc and not CONFIG_B.align_ipc
        assert CONFIG_D.aligned_prepare and not CONFIG_C.aligned_prepare
        assert CONFIG_E.opt_need_data and not CONFIG_D.opt_need_data
        assert CONFIG_F.opt_will_overwrite and not CONFIG_E.opt_will_overwrite

    def test_old_and_new_aliases(self):
        assert OLD_SYSTEM is CONFIG_A
        assert NEW_SYSTEM is CONFIG_F


class TestTable5Systems:
    def test_five_systems(self):
        assert [s.name for s in TABLE5_SYSTEMS] == [
            "CMU", "Utah", "Tut", "Apollo", "Sun"]

    def test_cmu_has_everything(self):
        cmu = TABLE5_SYSTEMS[0]
        assert cmu.lazy_unmap and cmu.align_ipc and cmu.aligned_prepare
        assert cmu.opt_need_data and cmu.opt_will_overwrite

    def test_tut_keeps_state_per_virtual_address(self):
        assert SYSTEM_TUT.lazy_unmap
        assert SYSTEM_TUT.tut_equal_va_only
        assert SYSTEM_TUT.aligned_prepare
        assert not SYSTEM_TUT.align_ipc

    def test_eager_systems(self):
        for name in ("Utah", "Apollo", "Sun"):
            system = by_name(name)
            assert not system.lazy_unmap


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert by_name("f") is CONFIG_F
        assert by_name("tut") is SYSTEM_TUT

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            by_name("nonesuch")

    def test_derive_changes_only_requested_fields(self):
        derived = CONFIG_F.derive("X", "test", opt_need_data=False)
        assert derived.name == "X"
        assert not derived.opt_need_data
        assert derived.opt_will_overwrite  # untouched
