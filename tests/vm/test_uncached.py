"""Tests for Sun-style uncached alias handling (Section 6).

With ``uncached_aliases`` enabled, an unaligned alias set stops being
cached: all mappings bypass the cache, so consistency needs no faults or
flush/purge traffic at all — at the price of slow memory-speed accesses.
"""

import numpy as np
import pytest

from repro.hw.machine import Machine
from repro.hw.params import small_machine
from repro.hw.stats import FaultKind
from repro.prot import AccessKind, Prot
from repro.vm.pmap import Pmap
from repro.vm.policy import SYSTEM_SUN, CONFIG_F

PAGE = 4096


class Rig:
    def __init__(self, policy=SYSTEM_SUN):
        self.machine = Machine(small_machine())
        self.pmap = Pmap(self.machine, policy)
        self.machine.fault_handler = self._handle
        self.consistency_faults = 0

    def _handle(self, info):
        self.consistency_faults += 1
        self.pmap.consistency_fault(info.asid, info.vaddr // PAGE,
                                    info.access)

    def enter(self, asid, vpage, ppage, access=AccessKind.READ):
        return self.pmap.enter(asid, vpage, ppage, Prot.READ_WRITE, access)


class TestConversion:
    def test_single_mapping_stays_cached(self):
        rig = Rig()
        pte = rig.enter(1, 10, 3, AccessKind.WRITE)
        assert not pte.uncached
        assert not rig.pmap.state_of(3).uncached

    def test_aligned_alias_stays_cached(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        pte = rig.enter(2, 14, 3, AccessKind.READ)   # aligns with 10
        assert not pte.uncached

    def test_unaligned_alias_converts_all_mappings(self):
        rig = Rig()
        first = rig.enter(1, 10, 3, AccessKind.WRITE)
        second = rig.enter(2, 11, 3, AccessKind.READ)
        assert first.uncached and second.uncached
        assert rig.pmap.state_of(3).uncached
        assert rig.machine.counters.pages_made_uncached == 1

    def test_conversion_flushes_dirty_data_first(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 42)          # dirty in cache
        rig.enter(2, 11, 3, AccessKind.READ)         # triggers conversion
        # the dirty value reached memory; uncached reads see it
        assert rig.machine.memory.read_word(3 * PAGE) == 42
        assert rig.machine.read(2, 11 * PAGE) == 42


class TestUncachedBehaviour:
    def test_ping_pong_without_any_faults(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.WRITE)        # now uncached
        f0 = rig.machine.counters.total_flushes("dcache")
        for i in range(20):
            rig.machine.write(1, 10 * PAGE, i)
            assert rig.machine.read(2, 11 * PAGE) == i
            rig.machine.write(2, 11 * PAGE, i + 100)
            assert rig.machine.read(1, 10 * PAGE) == i + 100
        assert rig.consistency_faults == 0
        assert rig.machine.counters.total_flushes("dcache") == f0

    def test_uncached_page_ops(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.WRITE)
        values = np.arange(1024, dtype=np.uint64)
        rig.machine.write_page(1, 10 * PAGE, values)
        assert np.array_equal(rig.machine.read_page(2, 11 * PAGE), values)

    def test_dma_needs_no_preparation_work(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 7)
        f0 = rig.machine.counters.total_flushes("dcache")
        rig.pmap.prepare_dma_read(3)
        assert rig.machine.counters.total_flushes("dcache") == f0
        assert rig.machine.dma.dma_read(3)[0] == 7   # memory is current

    def test_uncached_access_slower_than_cache_hit(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.WRITE)
        rig.machine.read(1, 10 * PAGE)
        t0 = rig.machine.clock.cycles
        rig.machine.read(1, 10 * PAGE)
        uncached_cost = rig.machine.clock.cycles - t0
        assert uncached_cost >= rig.machine.config.cost.uncached_word


class TestRecycling:
    def test_frame_returns_to_cached_life_after_reuse(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.WRITE)        # uncached now
        rig.pmap.remove(1, 10)
        rig.pmap.remove(2, 11)
        rig.pmap.zero_fill_page(3, ultimate_vpage=20)
        assert not rig.pmap.state_of(3).uncached
        pte = rig.enter(1, 20, 3, AccessKind.READ)
        assert not pte.uncached
        assert rig.machine.read(1, 20 * PAGE) == 0

    def test_plain_policy_never_goes_uncached(self):
        rig = Rig(policy=CONFIG_F)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        pte = rig.enter(2, 11, 3, AccessKind.READ)
        assert not pte.uncached
        assert rig.machine.counters.pages_made_uncached == 0
