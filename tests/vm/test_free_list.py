"""Tests for the (optionally colored) free page list."""

import pytest

from repro.errors import OutOfMemoryError
from repro.vm.free_list import FreePageList


class TestPlain:
    def test_lifo_reuse(self):
        fl = FreePageList(range(4), num_cache_pages=4)
        first = fl.allocate()
        fl.free(first)
        assert fl.allocate() == first

    def test_exhaustion(self):
        fl = FreePageList(range(1), num_cache_pages=4)
        fl.allocate()
        with pytest.raises(OutOfMemoryError):
            fl.allocate()

    def test_len(self):
        fl = FreePageList(range(5), num_cache_pages=4)
        fl.allocate()
        assert len(fl) == 4

    def test_color_ignored_when_not_colored(self):
        fl = FreePageList(range(4), num_cache_pages=4, colored=False)
        fl.free(99, color=2)
        # goes to the plain list; still allocatable
        got = [fl.allocate() for _ in range(5)]
        assert 99 in got


class TestColored:
    def test_prefers_matching_color(self):
        fl = FreePageList([], num_cache_pages=4, colored=True)
        fl.free(10, color=1)
        fl.free(11, color=2)
        assert fl.allocate(color=2) == 11
        assert fl.color_hits == 1

    def test_falls_back_across_colors(self):
        fl = FreePageList([], num_cache_pages=4, colored=True)
        fl.free(10, color=1)
        assert fl.allocate(color=3) == 10
        assert fl.color_misses == 1

    def test_plain_pool_used_before_stealing(self):
        fl = FreePageList([5], num_cache_pages=4, colored=True)
        fl.free(10, color=1)
        assert fl.allocate(color=3) == 5     # plain before stealing

    def test_color_wraps_modulo(self):
        fl = FreePageList([], num_cache_pages=4, colored=True)
        fl.free(10, color=5)    # = color 1
        assert fl.allocate(color=1) == 10
        assert fl.color_hits == 1

    def test_exhaustion_across_all_pools(self):
        fl = FreePageList([], num_cache_pages=4, colored=True)
        with pytest.raises(OutOfMemoryError):
            fl.allocate(color=0)
