"""Tests for page tables and the two-protection PTE."""

import pytest

from repro.errors import KernelError
from repro.prot import Prot
from repro.vm.pagetable import PageTable, PageTableEntry


class TestEffectiveProtection:
    def test_intersection_of_vm_and_cache_protection(self):
        pte = PageTableEntry(ppage=1, vm_prot=Prot.READ_WRITE,
                             cache_prot=Prot.READ)
        assert pte.effective_prot is Prot.READ

    def test_cache_protection_cannot_grant_beyond_vm(self):
        pte = PageTableEntry(ppage=1, vm_prot=Prot.READ,
                             cache_prot=Prot.READ_WRITE)
        assert pte.effective_prot is Prot.READ

    def test_exec_passes_through_from_vm_side(self):
        # Consistency protection governs the data cache; EXEC is managed
        # eagerly on the icache side.
        pte = PageTableEntry(ppage=1, vm_prot=Prot.READ_EXEC,
                             cache_prot=Prot.NONE)
        assert pte.effective_prot.allows(Prot.EXEC)
        assert not pte.effective_prot.allows(Prot.READ)


class TestPageTable:
    def test_enter_lookup_remove(self):
        table = PageTable(asid=1)
        pte = table.enter(10, 3, Prot.READ_WRITE)
        assert table.lookup(10) is pte
        assert 10 in table
        removed = table.remove(10)
        assert removed is pte
        assert table.lookup(10) is None

    def test_double_enter_rejected(self):
        table = PageTable(asid=1)
        table.enter(10, 3, Prot.READ)
        with pytest.raises(KernelError):
            table.enter(10, 4, Prot.READ)

    def test_remove_missing_rejected(self):
        with pytest.raises(KernelError):
            PageTable(asid=1).remove(10)

    def test_entries_snapshot_is_a_copy(self):
        table = PageTable(asid=1)
        table.enter(10, 3, Prot.READ)
        snapshot = table.entries()
        snapshot.clear()
        assert len(table) == 1
