"""Tests for VM objects."""

import pytest

from repro.errors import KernelError
from repro.vm.vm_object import Backing, VMObject


class TestResidency:
    def test_establish_and_lookup(self):
        obj = VMObject(4)
        assert obj.resident_page(0) is None
        obj.establish(0, 7)
        assert obj.resident_page(0) == 7

    def test_double_establish_rejected(self):
        obj = VMObject(4)
        obj.establish(0, 7)
        with pytest.raises(KernelError):
            obj.establish(0, 8)

    def test_evict(self):
        obj = VMObject(4)
        obj.establish(1, 9)
        assert obj.evict(1) == 9
        assert obj.resident_page(1) is None

    def test_evict_nonresident_rejected(self):
        with pytest.raises(KernelError):
            VMObject(4).evict(0)

    def test_bounds_checked(self):
        obj = VMObject(4)
        with pytest.raises(KernelError):
            obj.resident_page(4)

    def test_resident_pages_snapshot(self):
        obj = VMObject(4)
        obj.establish(0, 1)
        obj.establish(2, 3)
        assert obj.resident_pages() == {0: 1, 2: 3}


class TestBacking:
    def test_zero_fill_default(self):
        assert VMObject(1).backing is Backing.ZERO_FILL

    def test_file_backing_requires_file_id(self):
        with pytest.raises(KernelError):
            VMObject(1, Backing.FILE)
        obj = VMObject(2, Backing.FILE, file_id=9, file_offset=3)
        assert obj.file_id == 9
        assert obj.file_offset == 3

    def test_empty_object_rejected(self):
        with pytest.raises(KernelError):
            VMObject(0)


class TestRefCounting:
    def test_reference_dereference(self):
        obj = VMObject(1)
        obj.reference()
        obj.reference()
        assert obj.dereference() == 1
        assert obj.dereference() == 0

    def test_underflow_rejected(self):
        with pytest.raises(KernelError):
            VMObject(1).dereference()

    def test_ids_unique(self):
        assert VMObject(1).object_id != VMObject(1).object_id
