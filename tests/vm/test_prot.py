"""Tests for protection values and combination."""

from repro.prot import AccessKind, Prot


class TestProt:
    def test_lattice_combination(self):
        assert (Prot.READ_WRITE & Prot.READ) is Prot.READ
        assert (Prot.ALL & Prot.NONE) is Prot.NONE

    def test_allows(self):
        assert Prot.READ_WRITE.allows(Prot.READ)
        assert Prot.READ_WRITE.allows(Prot.WRITE)
        assert not Prot.READ.allows(Prot.WRITE)
        assert Prot.NONE.allows(Prot.NONE)
        assert not Prot.NONE.allows(Prot.READ)

    def test_read_exec(self):
        assert Prot.READ_EXEC.allows(Prot.EXEC)
        assert not Prot.READ_EXEC.allows(Prot.WRITE)

    def test_remove_a_right(self):
        assert (Prot.READ_WRITE & ~Prot.WRITE) is Prot.READ


class TestAccessKind:
    def test_required_rights(self):
        assert AccessKind.READ.required is Prot.READ
        assert AccessKind.WRITE.required is Prot.WRITE
        assert AccessKind.EXECUTE.required is Prot.EXEC

    def test_every_kind_has_a_requirement(self):
        for kind in AccessKind:
            assert kind.required != Prot.NONE
