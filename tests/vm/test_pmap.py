"""Tests for the machine-dependent pmap layer: the policies in action.

These drive the pmap directly (no kernel above it) on a small machine and
check both the *behaviour* (which flushes/purges happen when) and the
*correctness* (the oracle validates every transferred value).
"""

import numpy as np
import pytest

from repro.hw.machine import Machine
from repro.hw.params import small_machine
from repro.hw.stats import Reason
from repro.prot import AccessKind, Prot
from repro.vm.pmap import Pmap
from repro.vm.policy import (CONFIG_A, CONFIG_B, CONFIG_D, CONFIG_E,
                             CONFIG_F, SYSTEM_TUT)

PAGE = 4096
NCP = 4  # small machine: 16K dcache / 4K pages


class PmapRig:
    """Pmap + machine + a fault handler that resolves consistency faults."""

    def __init__(self, policy, **machine_overrides):
        self.machine = Machine(small_machine(**machine_overrides))
        self.pmap = Pmap(self.machine, policy)
        self.machine.fault_handler = self._handle
        self.consistency_faults = 0

    def _handle(self, info):
        self.consistency_faults += 1
        self.pmap.consistency_fault(info.asid, info.vaddr // PAGE,
                                    info.access)

    def enter(self, asid, vpage, ppage, access=AccessKind.READ,
              vm_prot=Prot.READ_WRITE):
        return self.pmap.enter(asid, vpage, ppage, vm_prot, access)

    def flushes(self):
        return self.machine.counters.total_flushes("dcache")

    def purges(self):
        return self.machine.counters.total_purges("dcache")


@pytest.fixture
def rig():
    return PmapRig(CONFIG_F)


class TestBasicMapping:
    def test_enter_then_access(self, rig):
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 42)
        assert rig.machine.read(1, 10 * PAGE) == 42

    def test_remove_revokes_translation(self, rig):
        rig.enter(1, 10, 3)
        rig.machine.read(1, 10 * PAGE)
        assert rig.pmap.remove(1, 10) == 3
        assert rig.pmap.translate(1, 10) is None
        assert (1, 10) not in rig.machine.tlb

    def test_protect_narrows_vm_rights(self, rig):
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.pmap.protect(1, 10, Prot.READ)
        pte = rig.pmap.page_table(1).lookup(10)
        assert not pte.effective_prot.allows(Prot.WRITE)


class TestUnalignedAliases:
    def test_values_stay_consistent_across_aliases(self, rig):
        # vpages 10 and 11 do not align (10 % 4 != 11 % 4).
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.READ, vm_prot=Prot.READ_WRITE)
        rig.machine.write(1, 10 * PAGE, 42)
        assert rig.machine.read(2, 11 * PAGE) == 42      # oracle-verified
        rig.machine.write(2, 11 * PAGE, 43)
        assert rig.machine.read(1, 10 * PAGE) == 43

    def test_alias_ping_pong_costs_flush_and_purge(self, rig):
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 11, 3, AccessKind.READ, vm_prot=Prot.READ_WRITE)
        rig.machine.write(1, 10 * PAGE, 1)
        baseline_flushes = rig.flushes()
        rig.machine.write(2, 11 * PAGE, 2)   # consistency fault: flush 10's page
        assert rig.flushes() > baseline_flushes
        assert rig.consistency_faults >= 1

    def test_aligned_aliases_cost_nothing(self, rig):
        # vpages 10 and 14 align (both cache page 2).
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(2, 14, 3, AccessKind.WRITE, vm_prot=Prot.READ_WRITE)
        f0, p0 = rig.flushes(), rig.purges()
        for i in range(10):
            rig.machine.write(1, 10 * PAGE, i)
            rig.machine.write(2, 14 * PAGE + 4, i + 100)
        assert rig.flushes() == f0
        assert rig.purges() == p0
        assert rig.consistency_faults == 0


class TestLazyUnmap:
    def test_unmap_performs_no_cache_ops(self):
        rig = PmapRig(CONFIG_B)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 7)
        f0, p0 = rig.flushes(), rig.purges()
        rig.pmap.remove(1, 10)
        assert (rig.flushes(), rig.purges()) == (f0, p0)

    def test_aligned_reuse_after_unmap_is_free(self):
        rig = PmapRig(CONFIG_B)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 7)
        rig.pmap.remove(1, 10)
        f0, p0 = rig.flushes(), rig.purges()
        # vpage 14 aligns with vpage 10 — and the dirty data is still in
        # the cache, served directly.
        rig.enter(2, 14, 3, AccessKind.READ, vm_prot=Prot.READ)
        assert rig.machine.read(2, 14 * PAGE) == 7
        assert (rig.flushes(), rig.purges()) == (f0, p0)

    def test_unaligned_reuse_pays_at_reuse_time(self):
        rig = PmapRig(CONFIG_B)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 7)
        rig.pmap.remove(1, 10)
        f0 = rig.flushes()
        rig.enter(2, 11, 3, AccessKind.READ, vm_prot=Prot.READ)
        assert rig.machine.read(2, 11 * PAGE) == 7
        assert rig.flushes() == f0 + 1       # old dirty page flushed at reuse

    def test_eager_unmap_cleans_immediately(self):
        rig = PmapRig(CONFIG_A)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 7)
        f0 = rig.flushes()
        rig.pmap.remove(1, 10)
        assert rig.flushes() == f0 + 1
        assert rig.machine.memory.read_word(3 * PAGE) == 7


class TestPagePreparation:
    def test_zero_fill_makes_page_zero_through_any_mapping(self, rig):
        rig.pmap.zero_fill_page(5, ultimate_vpage=10)
        rig.enter(1, 10, 5)
        assert rig.machine.read(1, 10 * PAGE + 8) == 0

    def test_aligned_prepare_avoids_all_cache_ops_at_first_touch(self):
        rig = PmapRig(CONFIG_D)
        rig.pmap.zero_fill_page(5, ultimate_vpage=10)
        f0, p0 = rig.flushes(), rig.purges()
        rig.enter(1, 10, 5, AccessKind.READ)
        rig.machine.read(1, 10 * PAGE)
        assert (rig.flushes(), rig.purges()) == (f0, p0)

    def test_unaligned_prepare_flushes_at_first_touch(self):
        rig = PmapRig(CONFIG_B)   # no aligned prepare
        # frame 5 preps through cache page 5 % 4 == 1; vpage 10 is cp 2.
        rig.pmap.zero_fill_page(5, ultimate_vpage=10)
        f0 = rig.flushes()
        rig.enter(1, 10, 5, AccessKind.READ)
        rig.machine.read(1, 10 * PAGE)
        assert rig.flushes() == f0 + 1

    def test_copy_page_copies_current_values(self, rig):
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 99)   # dirty in cache only
        rig.pmap.copy_page(3, 5, ultimate_vpage=20)
        rig.enter(1, 20, 5)
        assert rig.machine.read(1, 20 * PAGE) == 99

    def test_need_data_purges_dead_dirty_data(self):
        rig = PmapRig(CONFIG_E)
        rig.pmap.zero_fill_page(5, ultimate_vpage=10)   # frame 5 dirty at cp 2
        f0, p0 = rig.flushes(), rig.purges()
        # Re-prepare the same frame for an unaligned ultimate address: the
        # old dirty data is dead, so it is purged, not flushed.
        rig.pmap.zero_fill_page(5, ultimate_vpage=11)
        assert rig.flushes() == f0
        assert rig.purges() == p0 + 1

    def test_without_need_data_dead_data_is_flushed(self):
        rig = PmapRig(CONFIG_D)
        rig.pmap.zero_fill_page(5, ultimate_vpage=10)
        f0 = rig.flushes()
        rig.pmap.zero_fill_page(5, ultimate_vpage=11)
        assert rig.flushes() == f0 + 1

    def test_will_overwrite_skips_stale_target_purge(self):
        rig_e = PmapRig(CONFIG_E)
        rig_f = PmapRig(CONFIG_F)
        for rig2 in (rig_e, rig_f):
            # Make cache page 2 stale for frame 5: prepare at 10 (cp 2),
            # then prepare at 11 (cp 3) — stanza 4 stales cp 2.
            rig2.pmap.zero_fill_page(5, ultimate_vpage=10)
            rig2.pmap.zero_fill_page(5, ultimate_vpage=11)
            rig2.p_before = rig2.purges()
            # Re-prepare at 10: target cp 2 is stale.  E purges; F skips.
            rig2.pmap.zero_fill_page(5, ultimate_vpage=10)
        assert rig_e.purges() == rig_e.p_before + 2  # dead-dirty + stale
        assert rig_f.purges() == rig_f.p_before + 1  # dead-dirty only


class TestDmaPreparation:
    def test_dma_read_flushes_dirty_data(self, rig):
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 55)
        rig.pmap.prepare_dma_read(3)
        page = rig.machine.dma.dma_read(3)   # oracle checks the transfer
        assert page[0] == 55

    def test_dma_write_then_cpu_read_sees_device_data(self, rig):
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 55)  # cached + dirty
        rig.pmap.prepare_dma_write(3)
        fresh = np.full(1024, 77, dtype=np.uint64)
        rig.machine.dma.dma_write(3, fresh)
        assert rig.machine.read(1, 10 * PAGE) == 77   # not shadowed

    def test_modified_bit_redirty_detected_at_next_dma(self, rig):
        # After a DMA-read flush the writable mapping stays writable;
        # the page-modified bit (Section 4.1) must catch the re-dirtying.
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 1)
        rig.pmap.prepare_dma_read(3)
        rig.machine.dma.dma_read(3)
        faults_before = rig.consistency_faults
        rig.machine.write(1, 10 * PAGE, 2)   # no fault: still READ_WRITE
        assert rig.consistency_faults == faults_before
        rig.pmap.prepare_dma_read(3)
        page = rig.machine.dma.dma_read(3)   # would be stale without sync
        assert page[0] == 2

    def test_without_modified_bit_write_access_is_revoked(self):
        policy = CONFIG_F.derive("F-nomod", "test", use_modified_bit=False)
        rig = PmapRig(policy)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 1)
        rig.pmap.prepare_dma_read(3)
        rig.machine.dma.dma_read(3)
        faults_before = rig.consistency_faults
        rig.machine.write(1, 10 * PAGE, 2)   # must fault: RW was revoked
        assert rig.consistency_faults == faults_before + 1
        rig.pmap.prepare_dma_read(3)
        assert rig.machine.dma.dma_read(3)[0] == 2


class TestTextInstallation:
    def test_text_page_fetches_prepared_content(self, rig):
        values = np.arange(1024, dtype=np.uint64) + 7
        rig.machine.memory.write_page(4, values)
        if rig.machine.oracle:
            rig.machine.oracle.note_page_write(4 * PAGE, values)
        rig.pmap.copy_page(4, 5, ultimate_vpage=10)
        rig.pmap.install_text_page(1, 10, 5)
        assert rig.machine.ifetch(1, 10 * PAGE + 4) == 8

    def test_install_flushes_data_cache_and_counts_d2i(self, rig):
        rig.pmap.copy_page(3, 5, ultimate_vpage=10)   # frame 5 dirty
        d2i_before = rig.machine.counters.d_to_i_copies
        f0 = rig.flushes()
        rig.pmap.install_text_page(1, 10, 5)
        assert rig.flushes() == f0 + 1
        assert rig.machine.counters.d_to_i_copies == d2i_before + 1
        flush_d2i = rig.machine.counters.total_flushes(
            "dcache", Reason.D_TO_I_COPY)
        assert flush_d2i == 1

    def test_eager_policy_attributes_flush_to_unmap(self):
        rig = PmapRig(CONFIG_A)
        rig.pmap.copy_page(3, 5, ultimate_vpage=10)
        rig.pmap.install_text_page(1, 10, 5)
        assert rig.machine.counters.d_to_i_copies == 0   # Section 5.1: "A"
        assert rig.machine.counters.total_flushes(
            "dcache", Reason.UNMAP_EAGER) >= 1

    def test_icache_purged_when_frame_reused_as_text(self, rig):
        rig.pmap.copy_page(3, 5, ultimate_vpage=10)
        rig.pmap.install_text_page(1, 10, 5)
        rig.machine.ifetch(1, 10 * PAGE)
        rig.pmap.remove(1, 10)
        # Reuse the frame as different text at an aligned icache page.
        icp = rig.machine.icache.geo.num_cache_pages
        vpage2 = 10 + icp
        values = np.full(1024, 6, dtype=np.uint64)
        rig.machine.memory.write_page(4, values)
        if rig.machine.oracle:
            rig.machine.oracle.note_page_write(4 * PAGE, values)
        rig.pmap.copy_page(4, 5, ultimate_vpage=vpage2)
        purges_before = rig.machine.counters.total_purges("icache")
        rig.pmap.install_text_page(1, vpage2, 5)
        assert rig.machine.counters.total_purges("icache") > purges_before
        assert rig.machine.ifetch(1, vpage2 * PAGE) == 6


class TestEagerBreaking:
    def test_write_breaks_other_mappings(self):
        rig = PmapRig(CONFIG_A)
        rig.enter(1, 10, 3, AccessKind.READ, vm_prot=Prot.READ_WRITE)
        rig.enter(2, 11, 3, AccessKind.WRITE, vm_prot=Prot.READ_WRITE)
        # The first mapping's PTE is gone (broken), not just protected.
        assert rig.pmap.page_table(1).lookup(10) is None

    def test_read_breaks_only_writable_mappings(self):
        rig = PmapRig(CONFIG_A)
        rig.enter(1, 10, 3, AccessKind.WRITE, vm_prot=Prot.READ_WRITE)
        rig.machine.write(1, 10 * PAGE, 5)
        rig.enter(2, 11, 3, AccessKind.READ, vm_prot=Prot.READ)
        assert rig.pmap.page_table(1).lookup(10) is None
        assert rig.machine.read(2, 11 * PAGE) == 5


class TestTutEmulation:
    def test_equal_va_reuse_is_free(self):
        rig = PmapRig(SYSTEM_TUT)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 5)
        rig.pmap.remove(1, 10)
        f0, p0 = rig.flushes(), rig.purges()
        rig.enter(2, 10, 3, AccessKind.READ, vm_prot=Prot.READ)
        assert (rig.flushes(), rig.purges()) == (f0, p0)
        assert rig.machine.read(2, 10 * PAGE) == 5

    def test_aligned_but_different_va_still_pays(self):
        # Tut keeps state per virtual address: vpage 14 aligns with 10 but
        # is not equal, so Tut flushes/purges anyway.
        rig = PmapRig(SYSTEM_TUT)
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 5)
        rig.pmap.remove(1, 10)
        f0 = rig.flushes()
        rig.enter(2, 14, 3, AccessKind.READ, vm_prot=Prot.READ)
        assert rig.flushes() == f0 + 1
        assert rig.machine.read(2, 14 * PAGE) == 5


class TestFrameLifecycle:
    def test_frame_freed_reports_color(self, rig):
        rig.enter(1, 10, 3)
        rig.machine.read(1, 10 * PAGE)
        rig.pmap.remove(1, 10)
        assert rig.pmap.frame_freed(3) == 10 % NCP

    def test_frame_freed_with_mappings_rejected(self, rig):
        from repro.errors import KernelError
        rig.enter(1, 10, 3)
        with pytest.raises(KernelError):
            rig.pmap.frame_freed(3)
