"""Tests for address spaces and the two VA-selection strategies."""

import pytest

from repro.errors import KernelError
from repro.prot import Prot
from repro.vm.address_space import AddressSpace, PageDescriptor, PageKind
from repro.vm.vm_object import Backing, VMObject

NCP = 8


def make_space():
    return AddressSpace(asid=1, num_cache_pages=NCP, first_vpage=16)


def descriptor():
    return PageDescriptor(PageKind.ANON, VMObject(1, Backing.ZERO_FILL), 0,
                          Prot.READ_WRITE)


class TestFirstFit:
    def test_sequential_allocation(self):
        space = make_space()
        a = space.allocate_vpages()
        space.map_page(a, descriptor())
        b = space.allocate_vpages()
        assert b == a + 1

    def test_freed_addresses_are_reused(self):
        # Mach's anywhere-allocation reuses the lowest free range — the
        # source of natural alignment on reuse.
        space = make_space()
        a = space.allocate_vpages()
        space.map_page(a, descriptor())
        space.unmap_page(a)
        assert space.allocate_vpages() == a

    def test_multi_page_ranges_are_contiguous(self):
        space = make_space()
        a = space.allocate_vpages(3)
        for i in range(3):
            space.map_page(a + i, descriptor())
        b = space.allocate_vpages(2)
        assert b == a + 3

    def test_range_skips_partial_holes(self):
        space = make_space()
        a = space.allocate_vpages(1)
        space.map_page(a + 1, descriptor())   # poke a hole blocker
        got = space.allocate_vpages(2)
        assert got == a + 2


class TestColoredAllocation:
    def test_color_selects_cache_page(self):
        space = make_space()
        for color in range(NCP):
            vpage = space.allocate_vpages(color=color)
            assert vpage % NCP == color
            space.map_page(vpage, descriptor())

    def test_colored_collision_steps_by_ncp(self):
        space = make_space()
        first = space.allocate_vpages(color=3)
        space.map_page(first, descriptor())
        second = space.allocate_vpages(color=3)
        assert second == first + NCP

    def test_exhaustion_raises(self):
        space = AddressSpace(1, NCP, first_vpage=0, max_vpage=4)
        for _ in range(4):
            space.map_page(space.allocate_vpages(), descriptor())
        with pytest.raises(KernelError):
            space.allocate_vpages()


class TestMappingBookkeeping:
    def test_map_unmap_refcounts_object(self):
        space = make_space()
        desc = descriptor()
        vpage = space.allocate_vpages()
        space.map_page(vpage, desc)
        assert desc.vm_object.ref_count == 1
        space.unmap_page(vpage)
        assert desc.vm_object.ref_count == 0

    def test_double_map_rejected(self):
        space = make_space()
        vpage = space.allocate_vpages()
        space.map_page(vpage, descriptor())
        with pytest.raises(KernelError):
            space.map_page(vpage, descriptor())

    def test_unmap_missing_rejected(self):
        with pytest.raises(KernelError):
            make_space().unmap_page(99)

    def test_mapped_vpages_sorted(self):
        space = make_space()
        for vpage in (30, 20, 25):
            space.map_page(vpage, descriptor())
        assert space.mapped_vpages() == [20, 25, 30]

    def test_zero_pages_rejected(self):
        with pytest.raises(KernelError):
            make_space().allocate_vpages(0)

    def test_cache_page_of(self):
        space = make_space()
        assert space.cache_page_of(NCP + 3) == 3
