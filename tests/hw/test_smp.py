"""Tests for the Section 3.3 coherent-multiprocessor extension."""

import random

import pytest

from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster
from repro.hw.stats import Clock, Counters, Reason

PAGE = 4096


def make_cluster(n_cpus=2, size=16 * 1024):
    geo = CacheGeometry(size=size)
    mem = PhysicalMemory(16, PAGE)
    cluster = CoherentCluster(n_cpus, geo, mem, CostModel(), Clock(),
                              Counters())
    return cluster, mem


class TestCoherenceProtocol:
    def test_write_invalidates_remote_copies(self):
        cluster, mem = make_cluster()
        cluster.read(0, 0, 0)           # cpu0 caches the line
        cluster.write(1, 0, 0, 42)      # cpu1 writes: cpu0's copy dies
        set_idx = cluster.geometry.set_index(0)
        assert cluster.resident_copies(set_idx, 0) == 1
        assert cluster.coherence_invalidations == 1

    def test_read_sees_remote_dirty_data(self):
        cluster, mem = make_cluster()
        cluster.write(0, 0, 0, 7)       # dirty on cpu0 only
        assert cluster.read(1, 0, 0) == 7   # snoop writes back, cpu1 fills
        assert cluster.coherence_writebacks == 1

    def test_single_writer_invariant(self):
        cluster, mem = make_cluster(n_cpus=3)
        set_idx = cluster.geometry.set_index(0)
        for cpu in (0, 1, 2, 1, 0):
            cluster.write(cpu, 0, 0, cpu)
            assert cluster.dirty_copies(set_idx, 0) <= 1

    def test_ping_pong_values_always_fresh(self):
        cluster, mem = make_cluster()
        for i in range(20):
            cluster.write(i % 2, 0, 0, i)
            assert cluster.read((i + 1) % 2, 0, 0) == i

    def test_remote_dirty_written_back_before_local_write(self):
        cluster, mem = make_cluster()
        cluster.write(0, 4, 4, 11)      # cpu0 dirties word 1 of the line
        cluster.write(1, 0, 0, 22)      # cpu1 writes word 0
        # cpu1's fill must have observed cpu0's word: read it via cpu1.
        assert cluster.read(1, 4, 4) == 11


class TestUnchangedRules:
    def test_aligned_sharing_needs_no_software_management(self):
        # Hardware resolves aligned (equivalent-line) sharing entirely: a
        # random multi-CPU trace through aligned addresses matches a flat
        # reference with no flushes or purges.
        cluster, mem = make_cluster(n_cpus=3)
        span = cluster.geometry.way_span
        rng = random.Random(7)
        reference = {}
        for _ in range(400):
            cpu = rng.randrange(3)
            word = rng.randrange(64)
            paddr = word * 4
            vaddr = paddr + span * rng.randrange(3)   # aligned windows
            if rng.random() < 0.5:
                value = rng.randrange(1 << 30)
                cluster.write(cpu, vaddr, paddr, value)
                reference[paddr] = value
            else:
                assert cluster.read(cpu, vaddr, paddr) \
                    == reference.get(paddr, 0)

    def test_unaligned_aliases_remain_a_software_problem(self):
        # Section 3.3: the transition rules apply unchanged — hardware
        # does NOT resolve unaligned aliases even on the multiprocessor.
        cluster, mem = make_cluster()
        cluster.write(0, 0, 0, 5)          # cpu0, cache page 0
        stale = cluster.read(1, PAGE, 0)   # cpu1, unaligned alias
        assert stale != 5                  # the uniprocessor hazard persists

    def test_software_flush_resolves_it_cluster_wide(self):
        # ... and the unchanged Table 2 action (flush the dirty line)
        # applied to the distributed cache restores consistency.
        cluster, mem = make_cluster()
        cluster.write(0, 0, 0, 5)
        cluster.flush_page_frame(0, 0, Reason.ALIAS_READ)
        assert cluster.read(1, PAGE, 0) == 5

    def test_cluster_purge_drops_every_copy(self):
        cluster, mem = make_cluster(n_cpus=3)
        for cpu in range(3):
            cluster.read(cpu, 0, 0)
        dropped = cluster.purge_page_frame(0, 0, Reason.EXPLICIT)
        assert dropped == 3
        set_idx = cluster.geometry.set_index(0)
        assert cluster.resident_copies(set_idx, 0) == 0


class TestConfiguration:
    def test_needs_a_cpu(self):
        from repro.errors import ConfigurationError
        geo = CacheGeometry(size=16 * 1024)
        mem = PhysicalMemory(4, PAGE)
        with pytest.raises(ConfigurationError):
            CoherentCluster(0, geo, mem, CostModel(), Clock(), Counters())

    def test_len(self):
        cluster, _ = make_cluster(n_cpus=4)
        assert len(cluster) == 4
