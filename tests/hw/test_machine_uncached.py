"""Tests for the machine's uncached access paths (cache bypass)."""

import numpy as np
import pytest

from repro.hw.machine import Machine
from repro.hw.params import small_machine
from repro.prot import Prot

PAGE = 4096


class UncachedOS:
    """Maps everything uncached with full rights."""

    def __init__(self, machine, uncached=True):
        self.machine = machine
        self.uncached = uncached
        self.mappings = {}
        machine.translation_source = self.translate

    def map(self, asid, vpage, ppage):
        self.mappings[(asid, vpage)] = ppage
        self.machine.tlb.invalidate(asid, vpage)

    def translate(self, asid, vpage):
        ppage = self.mappings.get((asid, vpage))
        if ppage is None:
            return None
        return ppage, Prot.ALL, self.uncached


@pytest.fixture
def rig():
    machine = Machine(small_machine())
    return machine, UncachedOS(machine)


class TestUncachedAccess:
    def test_stores_reach_memory_directly(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        machine.write(1, 10 * PAGE, 99)
        assert machine.memory.read_word(3 * PAGE) == 99
        assert machine.counters.write_misses == 0   # cache never touched

    def test_loads_come_from_memory(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        machine.memory.write_word(3 * PAGE + 8, 55)
        if machine.oracle:
            machine.oracle.note_cpu_write(3 * PAGE + 8, 55)
        assert machine.read(1, 10 * PAGE + 8) == 55
        assert machine.counters.read_misses == 0

    def test_page_ops_bypass_the_cache(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        values = np.arange(1024, dtype=np.uint64)
        machine.write_page(1, 10 * PAGE, values)
        assert np.array_equal(machine.memory.read_page(3), values)
        assert np.array_equal(machine.read_page(1, 10 * PAGE), values)
        assert machine.counters.read_misses == 0

    def test_unaligned_aliases_trivially_consistent(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        os_.map(1, 11, 3)     # unaligned alias, both uncached
        for i in range(10):
            machine.write(1, 10 * PAGE, i)
            assert machine.read(1, 11 * PAGE) == i

    def test_uncached_costs_more_than_a_cache_hit(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        machine.read(1, 10 * PAGE)
        before = machine.clock.cycles
        machine.read(1, 10 * PAGE)
        assert (machine.clock.cycles - before
                >= machine.config.cost.uncached_word)

    def test_two_element_translation_defaults_to_cached(self):
        machine = Machine(small_machine())
        os_ = UncachedOS(machine, uncached=False)
        # translation source returning only (ppage, prot) must also work
        machine.translation_source = (
            lambda asid, vpage: (3, Prot.ALL) if (asid, vpage) == (1, 10)
            else None)
        machine.write(1, 10 * PAGE, 7)
        assert machine.counters.write_misses == 1   # went through the cache
        assert machine.memory.read_word(3 * PAGE) == 0  # write-back held it

    def test_mixed_cached_and_uncached_pages(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)                    # uncached
        machine.translation_source = (
            lambda asid, vpage:
            (3, Prot.ALL, True) if vpage == 10
            else ((4, Prot.ALL, False) if vpage == 11 else None))
        machine.tlb.invalidate_all()
        machine.write(1, 10 * PAGE, 1)       # straight to memory
        machine.write(1, 11 * PAGE, 2)       # into the cache
        assert machine.memory.read_word(3 * PAGE) == 1
        assert machine.memory.read_word(4 * PAGE) == 0
