"""Tests for cache geometry, cost model and machine configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.params import (CacheGeometry, CostModel, L2Geometry,
                             MachineConfig, apply_geometry, small_machine)


class TestCacheGeometry:
    def test_default_is_the_720_data_cache(self):
        geo = CacheGeometry()
        assert geo.size == 256 * 1024
        assert geo.num_cache_pages == 64
        assert geo.lines_per_page == 128
        assert geo.words_per_line == 8

    def test_way_span_and_sets(self):
        geo = CacheGeometry(size=16 * 1024, line_size=32)
        assert geo.num_sets == 512
        assert geo.way_span == 16 * 1024
        assert geo.num_cache_pages == 4

    def test_associativity_divides_span(self):
        geo = CacheGeometry(size=32 * 1024, associativity=2)
        assert geo.way_span == 16 * 1024
        assert geo.num_cache_pages == 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size=3000)

    def test_rejects_way_smaller_than_page(self):
        # Each way must span whole pages (the Section 4 hardware
        # requirement that makes cache pages well defined).
        with pytest.raises(ConfigurationError):
            CacheGeometry(size=2048, page_size=4096)

    def test_set_index_uses_line_granularity(self):
        geo = CacheGeometry(size=16 * 1024)
        assert geo.set_index(0) == 0
        assert geo.set_index(32) == 1
        assert geo.set_index(16 * 1024) == 0  # wraps at the way span

    def test_cache_page_wraps(self):
        geo = CacheGeometry(size=16 * 1024)   # 4 cache pages
        assert geo.cache_page(0) == 0
        assert geo.cache_page(4096 * 5) == 1

    def test_aligned(self):
        geo = CacheGeometry(size=16 * 1024)
        assert geo.aligned(0, 4 * 4096)
        assert not geo.aligned(0, 5 * 4096)


class TestCostModel:
    def test_resident_flush_seven_times_nonresident(self):
        cost = CostModel()
        assert cost.flush_line_hit == 7 * cost.flush_line_miss

    def test_purge_no_cheaper_than_flush(self):
        # "the 720 appears to purge no more quickly than it flushes"
        cost = CostModel()
        assert cost.purge_line_hit >= cost.flush_line_hit
        assert cost.purge_line_miss >= cost.flush_line_miss

    def test_seconds_at_50mhz(self):
        cost = CostModel()
        assert cost.seconds(50_000_000) == pytest.approx(1.0)


class TestMachineConfig:
    def test_default_has_split_caches(self):
        config = MachineConfig()
        assert config.dcache.size != config.icache.size
        assert config.page_size == 4096

    def test_rejects_mismatched_page_sizes(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(icache=CacheGeometry(page_size=8192,
                                               size=128 * 1024))

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(phys_pages=0)

    def test_small_machine_overrides(self):
        config = small_machine(phys_pages=32)
        assert config.phys_pages == 32
        assert config.dcache.num_cache_pages == 4
        assert config.icache.num_cache_pages == 2


class TestL2Geometry:
    def test_defaults(self):
        geo = L2Geometry()
        assert geo.size == 256 * 1024
        assert geo.associativity == 4
        assert geo.num_sets == geo.size // (geo.line_size
                                            * geo.associativity)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            L2Geometry(size=100 * 1000)
        with pytest.raises(ConfigurationError):
            L2Geometry(associativity=3)

    def test_machine_config_requires_matching_line_size(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(l2=L2Geometry(line_size=64))

    def test_machine_config_rejects_negative_victim_lines(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(victim_lines=-1)

    def test_has_hierarchy(self):
        assert not MachineConfig().has_hierarchy
        assert MachineConfig(victim_lines=4).has_hierarchy
        assert MachineConfig(l2=L2Geometry()).has_hierarchy


class TestApplyGeometry:
    def test_tokens_compose(self):
        config = apply_geometry(MachineConfig(), "2way+victim8+l2:64k/8")
        assert config.dcache.associativity == 2
        assert config.victim_lines == 8
        assert config.l2.size == 64 * 1024
        assert config.l2.associativity == 8
        assert config.l2.line_size == config.dcache.line_size

    def test_input_config_is_unchanged(self):
        base = MachineConfig()
        apply_geometry(base, "4way+victim4")
        assert base.dcache.associativity == 1
        assert base.victim_lines == 0

    def test_policy_tokens(self):
        config = apply_geometry(MachineConfig(), "wt+pi")
        assert config.dcache.write_through
        assert config.dcache.physically_indexed

    def test_one_way_and_victim0_are_the_identity(self):
        base = MachineConfig()
        assert apply_geometry(base, "1way+victim0") == base

    def test_l2_size_suffixes(self):
        assert apply_geometry(MachineConfig(), "l2:1m").l2.size == 2**20
        assert apply_geometry(MachineConfig(), "l2").l2 == L2Geometry()

    def test_rejects_unknown_tokens(self):
        for bad in ("3ways", "victimx", "l2:64k/x", "nope"):
            with pytest.raises(ConfigurationError):
                apply_geometry(MachineConfig(), bad)

    def test_rejects_illegal_resulting_shape(self):
        # 8 ways of the 16 KiB small-machine dcache would leave each way
        # smaller than a page — the paper's first hardware requirement.
        with pytest.raises(ConfigurationError):
            apply_geometry(small_machine(), "8way")
