"""Tests for the virtually indexed, physically tagged cache simulator.

These exercise exactly the hazards the paper is about: aliased residency,
write-back staleness, lost write-backs, and the flush/purge semantics.
"""

import numpy as np
import pytest

from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, Reason

PAGE = 4096


def make_cache(size=16 * 1024, assoc=1, write_through=False,
               physically_indexed=False, is_icache=False):
    geo = CacheGeometry(size=size, associativity=assoc,
                        write_through=write_through,
                        physically_indexed=physically_indexed)
    mem = PhysicalMemory(num_pages=32, page_size=PAGE)
    clock = Clock()
    counters = Counters()
    cache = Cache(geo, mem, CostModel(), clock, counters,
                  name="icache" if is_icache else "dcache",
                  is_icache=is_icache)
    return cache, mem, clock, counters


class TestWordAccess:
    def test_miss_then_hit(self):
        cache, mem, clock, counters = make_cache()
        mem.write_word(100 * 4, 77)
        assert cache.read(100 * 4, 100 * 4) == 77
        assert counters.read_misses == 1
        assert cache.read(100 * 4, 100 * 4) == 77
        assert counters.read_hits == 1

    def test_write_back_only_on_eviction(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 42)
        assert mem.read_word(0) == 0          # write-back: memory stale
        # Evict by touching a conflicting line (same set, way span apart).
        span = cache.geo.way_span
        cache.read(span, span)                # same index, different tag
        assert mem.read_word(0) == 42         # victim written back
        assert counters.write_backs == 1

    def test_fill_brings_whole_line(self):
        cache, mem, clock, counters = make_cache()
        mem.write_word(0, 10)
        mem.write_word(4, 11)
        cache.read(0, 0)
        assert cache.read(4, 4) == 11
        assert counters.read_misses == 1
        assert counters.read_hits == 1

    def test_virtual_index_physical_tag_alias_duplication(self):
        # The same physical word read through two unaligned virtual
        # addresses occupies two cache lines — the central hazard.
        cache, mem, clock, counters = make_cache()
        mem.write_word(0, 5)
        va2 = PAGE  # different cache page, same page offset
        cache.read(0, 0)
        cache.read(va2, 0)
        assert cache.resident_lines(0, 0) == 1
        assert cache.resident_lines(1, 0) == 1

    def test_aligned_alias_hits_the_same_line(self):
        # Aligned aliases resolve in the cache without going to memory
        # (physically tagged, Section 2.2).
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 9)
        span = cache.geo.way_span
        assert cache.read(span, 0) == 9       # aligned alias: same set+tag
        assert counters.read_hits == 1
        assert counters.read_misses == 0

    def test_stale_read_through_unaligned_alias_without_management(self):
        # Without consistency management the second alias sees old memory:
        # the hazard the whole paper exists to manage.
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 123)                # dirty in cache page 0
        assert cache.read(PAGE, 0) == 0       # unaligned alias reads stale 0

    def test_mismatched_page_offset_rejected(self):
        cache, mem, clock, counters = make_cache()
        with pytest.raises(Exception):
            cache.read(4, 8)


class TestFlushPurge:
    def test_flush_writes_back_and_invalidates(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 55)
        hits = cache.flush_page_frame(0, 0, Reason.EXPLICIT)
        assert hits == 1
        assert mem.read_word(0) == 55
        assert cache.resident_lines(0, 0) == 0

    def test_purge_discards_dirty_data(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 55)
        cache.purge_page_frame(0, 0, Reason.EXPLICIT)
        assert mem.read_word(0) == 0          # dirty data discarded
        assert cache.resident_lines(0, 0) == 0

    def test_flush_targets_only_the_matching_physical_page(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 1)                      # frame 0 via cache page 0
        cache.write(PAGE, PAGE, 2)                # frame 1 via cache page 1
        cache.flush_page_frame(0, PAGE, Reason.EXPLICIT)  # frame 1 at cp 0: none
        assert cache.resident_lines(0, 0) == 1    # frame 0 untouched

    def test_flush_of_absent_page_is_cheap(self):
        cache, mem, clock, counters = make_cache()
        cost = CostModel()
        cache.write(0, 0, 1)
        before = clock.cycles
        cache.flush_page_frame(2, 0, Reason.EXPLICIT)   # nothing resident
        cheap = clock.cycles - before
        before = clock.cycles
        cache.flush_page_frame(0, 0, Reason.EXPLICIT)   # one resident line
        expensive = clock.cycles - before
        assert expensive > cheap

    def test_fully_resident_flush_costs_about_seven_times_absent(self):
        cache, mem, clock, counters = make_cache()
        cache.write_page(0, 0, np.arange(1024, dtype=np.uint64))
        before = clock.cycles
        # flush cost only (write-back cycles counted separately per line)
        hits = cache.purge_page_frame(0, 0, Reason.EXPLICIT)
        resident_cost = clock.cycles - before
        assert hits == cache.geo.lines_per_page
        before = clock.cycles
        cache.purge_page_frame(0, 0, Reason.EXPLICIT)
        absent_cost = clock.cycles - before
        assert resident_cost == 7 * absent_cost

    def test_icache_purge_constant_time(self):
        cache, mem, clock, counters = make_cache(is_icache=True)
        cache.read_page(0, 0)
        before = clock.cycles
        cache.purge_page_frame(0, 0, Reason.EXPLICIT)
        full = clock.cycles - before
        before = clock.cycles
        cache.purge_page_frame(0, 0, Reason.EXPLICIT)
        empty = clock.cycles - before
        assert full == empty == CostModel().icache_purge_page

    def test_flush_purge_counters_tagged_by_reason(self):
        cache, mem, clock, counters = make_cache()
        cache.flush_page_frame(0, 0, Reason.DMA_READ)
        cache.purge_page_frame(1, 0, Reason.NEW_MAPPING)
        assert counters.total_flushes("dcache", Reason.DMA_READ) == 1
        assert counters.total_purges("dcache", Reason.NEW_MAPPING) == 1


class TestPageOps:
    def test_write_page_then_read_page(self):
        cache, mem, clock, counters = make_cache()
        values = np.arange(1024, dtype=np.uint64) + 7
        cache.write_page(0, 0, values)
        assert np.array_equal(cache.read_page(0, 0), values)

    def test_write_page_is_write_back(self):
        cache, mem, clock, counters = make_cache()
        values = np.ones(1024, dtype=np.uint64)
        cache.write_page(0, 0, values)
        assert not mem.read_page(0).any()     # memory not yet updated
        cache.flush_page_frame(0, 0, Reason.EXPLICIT)
        assert np.array_equal(mem.read_page(0), values)

    def test_write_page_evicts_dirty_victims(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 42)                 # dirty line, frame 0, cp 0
        span = cache.geo.way_span
        # write frame 4 through an aligned window (cache page 0)
        cache.write_page(0, 4 * PAGE, np.zeros(1024, dtype=np.uint64))
        assert mem.read_word(0) == 42         # victim reached memory

    def test_page_ops_equivalent_to_word_loops(self):
        cache_a, mem_a, _, _ = make_cache()
        cache_b, mem_b, _, _ = make_cache()
        values = np.arange(1024, dtype=np.uint64) * 3
        cache_a.write_page(PAGE, PAGE, values)
        for i in range(1024):
            cache_b.write(PAGE + 4 * i, PAGE + 4 * i, int(values[i]))
        got_a = cache_a.read_page(PAGE, PAGE)
        got_b = np.array([cache_b.read(PAGE + 4 * i, PAGE + 4 * i)
                          for i in range(1024)], dtype=np.uint64)
        assert np.array_equal(got_a, got_b)
        # and the same physical state after flushing
        cache_a.flush_page_frame(1, PAGE, Reason.EXPLICIT)
        cache_b.flush_page_frame(1, PAGE, Reason.EXPLICIT)
        assert np.array_equal(mem_a.read_page(1), mem_b.read_page(1))

    def test_zero_page(self):
        cache, mem, clock, counters = make_cache()
        cache.write_page(0, 0, np.ones(1024, dtype=np.uint64))
        cache.zero_page(0, 0)
        assert not cache.read_page(0, 0).any()

    def test_read_page_mixes_cached_dirty_and_memory_lines(self):
        cache, mem, clock, counters = make_cache()
        mem.write_page(0, np.full(1024, 5, dtype=np.uint64))
        cache.write(0, 0, 9)                   # one dirty line on top
        page = cache.read_page(0, 0)
        assert page[0] == 9                    # cached dirty value
        assert page[100] == 5                  # filled from memory


class TestWriteThrough:
    def test_stores_reach_memory_immediately(self):
        cache, mem, clock, counters = make_cache(write_through=True)
        cache.write(0, 0, 11)
        assert mem.read_word(0) == 11

    def test_no_dirty_lines_ever(self):
        cache, mem, clock, counters = make_cache(write_through=True)
        cache.write(0, 0, 11)
        cache.write_page(PAGE, PAGE, np.ones(1024, dtype=np.uint64))
        assert cache.dirty_cache_pages(0) == []
        assert cache.dirty_cache_pages(PAGE) == []

    def test_page_write_through(self):
        cache, mem, clock, counters = make_cache(write_through=True)
        values = np.arange(1024, dtype=np.uint64)
        cache.write_page(0, 0, values)
        assert np.array_equal(mem.read_page(0), values)


class TestPhysicallyIndexed:
    def test_aliases_always_align(self):
        cache, mem, clock, counters = make_cache(physically_indexed=True)
        cache.write(0, 0, 31)
        # A wildly different virtual address still hits: index from paddr.
        assert cache.read(5 * PAGE, 0) == 31
        assert counters.read_hits == 1


class TestSetAssociative:
    def test_two_way_holds_two_conflicting_lines(self):
        cache, mem, clock, counters = make_cache(size=16 * 1024, assoc=2)
        span = cache.geo.way_span
        cache.write(0, 0, 1)
        cache.write(span, span, 2)            # same set, other way
        assert cache.read(0, 0) == 1          # still resident
        assert cache.read(span, span) == 2
        assert counters.write_backs == 0

    def test_lru_eviction(self):
        cache, mem, clock, counters = make_cache(size=16 * 1024, assoc=2)
        span = cache.geo.way_span
        cache.write(0, 0, 1)
        cache.write(span, span, 2)
        cache.read(0, 0)                      # make way 0 most recent
        cache.read(2 * span, 2 * span)        # evicts the LRU (tag span)
        assert mem.read_word(span) == 2       # victim written back

    def test_physical_tag_unique_within_set(self):
        # Hardware invariant Section 3.3 relies on: at most one copy of a
        # physical line per set.
        cache, mem, clock, counters = make_cache(size=16 * 1024, assoc=2)
        cache.write(0, 0, 1)
        cache.write(0, 0, 2)                  # same line again
        assert cache.resident_lines(0, 0) == 1

    def test_page_ops_work_associative(self):
        cache, mem, clock, counters = make_cache(size=16 * 1024, assoc=2)
        values = np.arange(1024, dtype=np.uint64)
        cache.write_page(0, 0, values)
        assert np.array_equal(cache.read_page(0, 0), values)
        cache.flush_page_frame(0, 0, Reason.EXPLICIT)
        assert np.array_equal(mem.read_page(0), values)


class TestLostWriteBackHazard:
    def test_doubly_dirty_alias_loses_a_write_without_management(self):
        # Section 2.2: "Writes can also be lost if a physical address is
        # dirty in more than one cache line."  Demonstrate the hazard the
        # management layer prevents.
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 111)        # dirty in cache page 0
        cache.write(PAGE, 0, 222)     # dirty in cache page 1 (same paddr!)
        cache.flush_page_frame(1, 0, Reason.EXPLICIT)   # newer value lands
        cache.flush_page_frame(0, 0, Reason.EXPLICIT)   # older overwrites it
        assert mem.read_word(0) == 111  # the newer write (222) was lost


class TestInspection:
    def test_invalidate_all(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 1)
        cache.invalidate_all()
        assert cache.resident_lines(0, 0) == 0

    def test_dirty_cache_pages(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 1)
        cache.write(2 * PAGE, PAGE, 1)
        assert cache.dirty_cache_pages(0) == [0]
        assert cache.dirty_cache_pages(PAGE) == [2]

    def test_line_value(self):
        cache, mem, clock, counters = make_cache()
        cache.write(0, 0, 77)
        line = cache.line_value(0, 0, 0)
        assert line is not None
        assert line[0] == 77
        assert cache.line_value(1, 0, 0) is None
