"""Tests for the machine: translation, faulting, access paths."""

import numpy as np
import pytest

from repro.errors import FaultLoopError, ProtectionError
from repro.hw.machine import Machine
from repro.hw.params import small_machine
from repro.prot import AccessKind, Prot

PAGE = 4096


class SimpleOS:
    """A minimal translation source / fault handler for machine tests."""

    def __init__(self, machine):
        self.machine = machine
        self.mappings = {}         # (asid, vpage) -> (ppage, prot)
        self.faults = []
        machine.translation_source = self.translate
        machine.fault_handler = self.fault

    def map(self, asid, vpage, ppage, prot=Prot.ALL):
        self.mappings[(asid, vpage)] = (ppage, prot)
        self.machine.tlb.invalidate(asid, vpage)

    def translate(self, asid, vpage):
        return self.mappings.get((asid, vpage))

    def fault(self, info):
        self.faults.append(info)
        # Resolve by granting full access to a fixed frame.
        self.map(info.asid, info.vaddr // PAGE, 7, Prot.ALL)


@pytest.fixture
def rig():
    machine = Machine(small_machine())
    return machine, SimpleOS(machine)


class TestTranslation:
    def test_mapped_read_write(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        machine.write(1, 10 * PAGE + 8, 99)
        assert machine.read(1, 10 * PAGE + 8) == 99
        assert os_.faults == []

    def test_translation_cached_in_tlb(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        machine.read(1, 10 * PAGE)
        machine.read(1, 10 * PAGE + 4)
        assert machine.counters.tlb_hits >= 1

    def test_fault_resolution_and_retry(self, rig):
        machine, os_ = rig
        value = machine.read(1, 20 * PAGE)    # unmapped: faults, resolves
        assert len(os_.faults) == 1
        assert os_.faults[0].access is AccessKind.READ
        assert value == 0

    def test_write_fault_on_read_only_mapping(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3, Prot.READ)
        machine.write(1, 10 * PAGE, 5)        # faults, handler grants ALL
        assert len(os_.faults) == 1
        assert os_.faults[0].access is AccessKind.WRITE

    def test_fault_loop_detected(self, rig):
        machine, os_ = rig
        machine.fault_handler = lambda info: None   # never resolves
        with pytest.raises(FaultLoopError):
            machine.read(1, 30 * PAGE)

    def test_no_handler_raises_protection_error(self, rig):
        machine, os_ = rig
        machine.fault_handler = None
        with pytest.raises(ProtectionError):
            machine.read(1, 30 * PAGE)


class TestAccessPaths:
    def test_ifetch_uses_icache(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3, Prot.READ_EXEC)
        machine.ifetch(1, 10 * PAGE)
        assert machine.counters.read_misses == 1
        machine.ifetch(1, 10 * PAGE)
        assert machine.counters.read_hits == 1

    def test_ifetch_requires_exec(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3, Prot.READ)
        machine.ifetch(1, 10 * PAGE)          # faults
        assert os_.faults and os_.faults[0].access is AccessKind.EXECUTE

    def test_page_read_write(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        values = np.arange(1024, dtype=np.uint64)
        machine.write_page(1, 10 * PAGE, values)
        assert np.array_equal(machine.read_page(1, 10 * PAGE), values)

    def test_oracle_checks_cpu_reads(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        machine.write(1, 10 * PAGE, 42)
        # Sabotage: change cached data behind the oracle's back.
        machine.dcache._data[:] = 0
        from repro.errors import StaleDataError
        with pytest.raises(StaleDataError):
            machine.read(1, 10 * PAGE)

    def test_write_notifier_fires_per_store(self, rig):
        machine, os_ = rig
        os_.map(1, 10, 3)
        notes = []
        machine.write_notifier = lambda asid, vpage: notes.append((asid, vpage))
        machine.write(1, 10 * PAGE, 1)
        machine.write_page(1, 10 * PAGE, np.zeros(1024, dtype=np.uint64))
        assert notes == [(1, 10), (1, 10)]


class TestTimeAccounting:
    def test_consume_advances_clock(self, rig):
        machine, os_ = rig
        machine.consume(1000)
        assert machine.clock.cycles >= 1000

    def test_elapsed_seconds(self, rig):
        machine, os_ = rig
        machine.consume(50_000_000)
        assert machine.elapsed_seconds >= 1.0

    def test_aliased_writes_share_page_offset_constraint(self, rig):
        machine, os_ = rig
        # Two unaligned virtual pages onto one frame: the machine handles
        # it (the *correctness* is the OS's job; here only mechanics).
        os_.map(1, 10, 3)
        os_.map(1, 11, 3)
        machine.write(1, 10 * PAGE, 5)
        machine.write(1, 11 * PAGE + 4, 6)
        assert machine.read(1, 10 * PAGE) == 5
