"""Tests for the DMA engine (cache-bypassing, as on the 700 series)."""

import numpy as np
import pytest

from repro.core.oracle import ShadowMemory
from repro.errors import AddressError, StaleDataError
from repro.hw.dma import DmaEngine
from repro.hw.params import MachineConfig
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters

PAGE = 4096
WPP = 1024


def make_dma(with_oracle=True):
    config = MachineConfig(phys_pages=8)
    mem = PhysicalMemory(8, PAGE)
    oracle = ShadowMemory(8, PAGE) if with_oracle else None
    dma = DmaEngine(mem, config, Clock(), Counters(), oracle=oracle)
    return dma, mem, oracle


class TestTransfers:
    def test_dma_write_deposits_in_memory(self):
        dma, mem, oracle = make_dma()
        values = np.arange(WPP, dtype=np.uint64)
        dma.dma_write(2, values)
        assert np.array_equal(mem.read_page(2), values)
        assert dma.counters.dma_writes == 1

    def test_dma_read_returns_memory_contents(self):
        dma, mem, oracle = make_dma(with_oracle=False)
        mem.write_page(1, np.full(WPP, 9, dtype=np.uint64))
        assert np.array_equal(dma.dma_read(1),
                              np.full(WPP, 9, dtype=np.uint64))
        assert dma.counters.dma_reads == 1

    def test_transfers_charge_cycles(self):
        dma, mem, oracle = make_dma()
        dma.dma_write(0, np.zeros(WPP, dtype=np.uint64))
        assert dma.clock.cycles > 0

    def test_partial_page_rejected(self):
        dma, mem, oracle = make_dma()
        with pytest.raises(AddressError):
            dma.dma_write(0, np.zeros(10, dtype=np.uint64))


class TestOracleIntegration:
    def test_dma_write_updates_the_oracle(self):
        dma, mem, oracle = make_dma()
        values = np.full(WPP, 3, dtype=np.uint64)
        dma.dma_write(2, values)
        oracle.check_cpu_read(2 * PAGE, 3)   # device data is the truth now

    def test_dma_read_of_consistent_memory_passes(self):
        dma, mem, oracle = make_dma()
        dma.dma_write(1, np.full(WPP, 4, dtype=np.uint64))
        dma.dma_read(1)

    def test_dma_read_of_stale_memory_caught(self):
        # A CPU write that stayed in a write-back cache: memory is stale
        # and the device must not read it (Section 2.4).
        dma, mem, oracle = make_dma()
        oracle.note_cpu_write(PAGE, 42)      # write never flushed to memory
        with pytest.raises(StaleDataError):
            dma.dma_read(1)
