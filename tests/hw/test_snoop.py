"""Unit tests for the cache's coherence snoop primitive."""

import pytest

from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters


def make_cache(assoc=1):
    geo = CacheGeometry(size=16 * 1024, associativity=assoc)
    mem = PhysicalMemory(8, 4096)
    return Cache(geo, mem, CostModel(), Clock(), Counters()), mem, geo


class TestSnoop:
    def test_miss_returns_none(self):
        cache, mem, geo = make_cache()
        assert cache.snoop(0, 0, invalidate=True) is None

    def test_clean_copy_reported_and_invalidated(self):
        cache, mem, geo = make_cache()
        cache.read(0, 0)
        set_idx = geo.set_index(0)
        assert cache.snoop(set_idx, 0, invalidate=True) == "clean"
        assert cache.resident_lines(0, 0) == 0

    def test_clean_copy_survives_read_probe(self):
        cache, mem, geo = make_cache()
        cache.read(0, 0)
        set_idx = geo.set_index(0)
        assert cache.snoop(set_idx, 0, invalidate=False) == "clean"
        assert cache.resident_lines(0, 0) == 1

    def test_dirty_copy_written_back(self):
        cache, mem, geo = make_cache()
        cache.write(0, 0, 42)
        set_idx = geo.set_index(0)
        assert cache.snoop(set_idx, 0, invalidate=False) == "dirty"
        assert mem.read_word(0) == 42
        # left clean (shared) in place
        assert cache.dirty_lines(0, 0) == 0
        assert cache.resident_lines(0, 0) == 1

    def test_dirty_invalidate_writes_back_then_drops(self):
        cache, mem, geo = make_cache()
        cache.write(0, 0, 7)
        set_idx = geo.set_index(0)
        assert cache.snoop(set_idx, 0, invalidate=True) == "dirty"
        assert mem.read_word(0) == 7
        assert cache.resident_lines(0, 0) == 0

    def test_wrong_tag_is_a_miss(self):
        cache, mem, geo = make_cache()
        cache.read(0, 0)
        set_idx = geo.set_index(0)
        assert cache.snoop(set_idx, 999, invalidate=True) is None
        assert cache.resident_lines(0, 0) == 1

    def test_associative_snoop_finds_any_way(self):
        cache, mem, geo = make_cache(assoc=2)
        span = geo.way_span
        cache.write(0, 0, 1)
        cache.write(span, span, 2)            # other way, same set
        set_idx = geo.set_index(0)
        tag2 = span // geo.line_size
        assert cache.snoop(set_idx, tag2, invalidate=True) == "dirty"
        assert mem.read_word(span) == 2
        assert cache.read(0, 0) == 1          # first way untouched
