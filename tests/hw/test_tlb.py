"""Tests for the TLB."""

import pytest

from repro.hw.params import CostModel
from repro.hw.stats import Clock, Counters
from repro.hw.tlb import Tlb
from repro.prot import Prot


@pytest.fixture
def tlb():
    return Tlb(entries=4, cost=CostModel(), clock=Clock(),
               counters=Counters())


class TestLookup:
    def test_miss_then_hit(self, tlb):
        assert tlb.lookup(1, 10) is None
        tlb.insert(1, 10, 5, Prot.READ)
        entry = tlb.lookup(1, 10)
        assert entry.ppage == 5
        assert entry.prot is Prot.READ
        assert tlb.counters.tlb_misses == 1
        assert tlb.counters.tlb_hits == 1

    def test_asids_are_distinct(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        assert tlb.lookup(2, 10) is None

    def test_miss_charges_refill_cycles(self, tlb):
        tlb.lookup(1, 10)
        assert tlb.clock.cycles == CostModel().tlb_miss


class TestReplacement:
    def test_fifo_eviction_at_capacity(self, tlb):
        for vpage in range(5):
            tlb.insert(1, vpage, vpage, Prot.READ)
        assert len(tlb) == 4
        assert tlb.lookup(1, 0) is None       # oldest evicted
        assert tlb.lookup(1, 4) is not None

    def test_reinsert_updates_in_place(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.insert(1, 10, 5, Prot.READ_WRITE)
        assert len(tlb) == 1
        assert tlb.lookup(1, 10).prot is Prot.READ_WRITE


class TestInvalidation:
    def test_single_entry(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.invalidate(1, 10)
        assert tlb.lookup(1, 10) is None

    def test_invalidate_missing_is_noop(self, tlb):
        tlb.invalidate(1, 99)

    def test_invalidate_asid(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.insert(1, 11, 6, Prot.READ)
        tlb.insert(2, 10, 7, Prot.READ)
        tlb.invalidate_asid(1)
        assert tlb.lookup(1, 10) is None
        assert tlb.lookup(1, 11) is None
        assert tlb.lookup(2, 10) is not None

    def test_invalidate_all(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.insert(2, 11, 6, Prot.READ)
        tlb.invalidate_all()
        assert len(tlb) == 0

    def test_contains(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        assert (1, 10) in tlb
        assert (1, 11) not in tlb
