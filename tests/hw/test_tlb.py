"""Tests for the TLB."""

import pytest

from repro.faults.injector import FaultInjector, FaultPlan, FaultRule
from repro.hw.params import CostModel
from repro.hw.stats import Clock, Counters
from repro.hw.tlb import Tlb
from repro.prot import Prot


@pytest.fixture
def tlb():
    return Tlb(entries=4, cost=CostModel(), clock=Clock(),
               counters=Counters())


class TestLookup:
    def test_miss_then_hit(self, tlb):
        assert tlb.lookup(1, 10) is None
        tlb.insert(1, 10, 5, Prot.READ)
        entry = tlb.lookup(1, 10)
        assert entry.ppage == 5
        assert entry.prot is Prot.READ
        assert tlb.counters.tlb_misses == 1
        assert tlb.counters.tlb_hits == 1

    def test_asids_are_distinct(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        assert tlb.lookup(2, 10) is None

    def test_miss_charges_refill_cycles(self, tlb):
        tlb.lookup(1, 10)
        assert tlb.clock.cycles == CostModel().tlb_miss


class TestReplacement:
    def test_fifo_eviction_at_capacity(self, tlb):
        for vpage in range(5):
            tlb.insert(1, vpage, vpage, Prot.READ)
        assert len(tlb) == 4
        assert tlb.lookup(1, 0) is None       # oldest evicted
        assert tlb.lookup(1, 4) is not None

    def test_reinsert_updates_in_place(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.insert(1, 10, 5, Prot.READ_WRITE)
        assert len(tlb) == 1
        assert tlb.lookup(1, 10).prot is Prot.READ_WRITE


class TestInvalidation:
    def test_single_entry(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.invalidate(1, 10)
        assert tlb.lookup(1, 10) is None

    def test_invalidate_missing_is_noop(self, tlb):
        tlb.invalidate(1, 99)

    def test_invalidate_asid(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.insert(1, 11, 6, Prot.READ)
        tlb.insert(2, 10, 7, Prot.READ)
        tlb.invalidate_asid(1)
        assert tlb.lookup(1, 10) is None
        assert tlb.lookup(1, 11) is None
        assert tlb.lookup(2, 10) is not None

    def test_invalidate_all(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.insert(2, 11, 6, Prot.READ)
        tlb.invalidate_all()
        assert len(tlb) == 0

    def test_contains(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        assert (1, 10) in tlb
        assert (1, 11) not in tlb


class TestCorruptionInvalidatesMicroCache:
    """Regression: an injected TLB-entry corruption must invalidate the
    one-entry micro-cache like every other mutator — otherwise the
    corrupted translation could be served one extra time from the
    micro-cache after parity already rejected it."""

    def _armed(self, tlb, max_fires=1):
        plan = FaultPlan(seed=0, rules=(
            FaultRule("tlb.entry.corrupt", rate=1.0, max_fires=max_fires),))
        FaultInjector(plan, tlb.clock).attach(tlb=tlb)
        return tlb

    def test_corruption_clears_micro_cache(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        assert tlb.lookup(1, 10) is not None   # primes the micro-cache
        assert tlb._last_key == (1, 10)
        self._armed(tlb)
        assert tlb.lookup(1, 10) is None       # parity rejects the entry
        assert tlb._last_key is None
        assert tlb._last_entry is None

    def test_no_stale_serve_after_recovery(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.lookup(1, 10)
        self._armed(tlb)
        assert tlb.lookup(1, 10) is None       # injected corruption fires
        # The budget is spent; the next lookup must be a genuine miss
        # (a refill walk), never a micro-cache serve of the dead entry.
        hits_before = tlb.counters.tlb_hits
        assert tlb.lookup(1, 10) is None
        assert tlb.counters.tlb_hits == hits_before
        assert tlb.counters.tlb_parity_recoveries == 1

    def test_recovery_is_charged_and_counted(self, tlb):
        tlb.insert(1, 10, 5, Prot.READ)
        tlb.lookup(1, 10)
        cycles_before = tlb.clock.cycles
        self._armed(tlb)
        tlb.lookup(1, 10)
        cost = CostModel()
        assert (tlb.clock.cycles - cycles_before
                == cost.tlb_parity_recovery + cost.tlb_miss)
        assert tlb.counters.tlb_parity_recoveries == 1
