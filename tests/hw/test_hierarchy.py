"""Tests for the lower cache hierarchy (victim cache and unified L2).

The hierarchy's correctness argument is the clean-copy invariant: every
line resident below the L1s equals *current physical memory*, so a fill
served from the victim cache or the L2 is bit-for-bit what a memory fill
would return and Table 2 is untouched (Section 3.3).  These tests pin
the mechanisms that maintain it — FIFO/LRU replacement determinism, the
per-line epoch guard against capturing stale-but-clean lines, the
per-source cycle charges — and prove the degenerate hierarchy is
bit-identical to the seed simulator.
"""

import numpy as np
import pytest

from repro.hw.cache import Cache
from repro.hw.hierarchy import CacheHierarchy, L2Cache, VictimCache
from repro.hw.params import CacheGeometry, CostModel, L2Geometry
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, Reason

PAGE = 4096
LINE = 32
WPL = LINE // 4


def line(v) -> np.ndarray:
    return np.full(WPL, v, dtype=np.uint64)


def make_hierarchy(victim_lines=0, l2=None, num_pages=32):
    mem = PhysicalMemory(num_pages=num_pages, page_size=PAGE)
    clock = Clock()
    counters = Counters()
    hierarchy = CacheHierarchy(mem, CostModel(), clock, counters, LINE,
                               victim_lines=victim_lines, l2=l2)
    return hierarchy, mem, clock, counters


def make_cache(size=16 * 1024, assoc=1, victim_lines=0, l2=None,
               write_through=False):
    geo = CacheGeometry(size=size, associativity=assoc,
                        write_through=write_through)
    mem = PhysicalMemory(num_pages=32, page_size=PAGE)
    clock = Clock()
    counters = Counters()
    hierarchy = CacheHierarchy(mem, CostModel(), clock, counters, LINE,
                               victim_lines=victim_lines, l2=l2)
    cache = Cache(geo, mem, CostModel(), clock, counters, name="dcache",
                  hierarchy=hierarchy)
    return cache, hierarchy, mem, clock, counters


class TestVictimCache:
    def test_capture_take_roundtrip_copies(self):
        vc = VictimCache(4, WPL)
        data = line(7)
        vc.capture(10, data)
        data[:] = 0                               # caller's buffer reused
        taken = vc.take(10)
        assert taken is not None and taken[0] == 7
        assert vc.take(10) is None                # a hit removes the entry

    def test_fifo_eviction_order(self):
        vc = VictimCache(2, WPL)
        vc.capture(1, line(1))
        vc.capture(2, line(2))
        vc.capture(3, line(3))                    # evicts 1, the oldest
        assert vc.resident_tags() == [2, 3]
        vc.capture(4, line(4))                    # evicts 2
        assert vc.resident_tags() == [3, 4]

    def test_recapture_refreshes_data_but_not_queue_position(self):
        vc = VictimCache(2, WPL)
        vc.capture(1, line(1))
        vc.capture(2, line(2))
        vc.capture(1, line(9))                    # refresh, still oldest
        assert vc.take(1)[0] == 9
        vc.capture(1, line(1))
        vc.capture(3, line(3))                    # 2 is oldest now? no: 2
        # queue after the take+capture is [2, 1]; capturing 3 evicts 2.
        assert sorted(vc.resident_tags()) == [1, 3]

    def test_zero_lines_is_inert(self):
        vc = VictimCache(0, WPL)
        vc.capture(1, line(1))
        assert len(vc) == 0 and vc.take(1) is None

    def test_invalidate_range(self):
        vc = VictimCache(4, WPL)
        for tag in (5, 6, 9):
            vc.capture(tag, line(tag))
        vc.invalidate_range(5, 6)
        assert vc.resident_tags() == [9]


class TestL2Cache:
    GEO = L2Geometry(size=4 * 1024, line_size=LINE, associativity=2)

    def test_lookup_returns_copy(self):
        l2 = L2Cache(self.GEO, WPL)
        l2.insert(3, line(3))
        got = l2.lookup(3)
        got[:] = 0
        assert l2.lookup(3)[0] == 3

    def test_insert_fills_lowest_empty_way_then_lru(self):
        l2 = L2Cache(self.GEO, WPL)
        sets = self.GEO.num_sets
        a, b, c = 7, 7 + sets, 7 + 2 * sets       # all map to set 7
        l2.insert(a, line(1))
        l2.insert(b, line(2))
        assert l2._tags[0, 7] == a and l2._tags[1, 7] == b
        l2.lookup(a)                              # touch a; b becomes LRU
        l2.insert(c, line(3))                     # evicts b
        assert l2.lookup(b) is None
        assert l2.lookup(a)[0] == 1 and l2.lookup(c)[0] == 3

    def test_insert_refreshes_in_place(self):
        l2 = L2Cache(self.GEO, WPL)
        l2.insert(3, line(1))
        l2.insert(3, line(2))
        assert l2.resident_tags() == [3]
        assert l2.lookup(3)[0] == 2

    def test_invalidate_range(self):
        l2 = L2Cache(self.GEO, WPL)
        for tag in (1, 2, 300):
            l2.insert(tag, line(tag))
        l2.invalidate_range(1, 2)
        assert l2.resident_tags() == [300]


class TestFetchLineCharging:
    def test_memory_fill_charges_line_fill_and_feeds_l2(self):
        l2 = L2Geometry(size=4 * 1024, line_size=LINE, associativity=2)
        h, mem, clock, counters = make_hierarchy(victim_lines=2, l2=l2)
        mem.write_word(0, 42)
        before = clock.cycles
        got = h.fetch_line(0)
        assert got[0] == 42
        assert clock.cycles - before == CostModel().line_fill
        assert counters.l2_fills == 1

    def test_victim_beats_l2_beats_memory(self):
        l2 = L2Geometry(size=4 * 1024, line_size=LINE, associativity=2)
        h, mem, clock, counters = make_hierarchy(victim_lines=2, l2=l2)
        h.fetch_line(5)                           # memory fill; now in L2
        before = clock.cycles
        h.fetch_line(5)                           # L2 hit
        assert clock.cycles - before == CostModel().l2_hit
        assert counters.l2_hits == 1
        h.capture(5, line(9))                     # victim holds it too
        before = clock.cycles
        got = h.fetch_line(5)                     # victim hit wins
        assert clock.cycles - before == CostModel().victim_hit
        assert counters.victim_hits == 1
        assert got[0] == 9

    def test_capture_prefers_victim_else_l2(self):
        h, _, _, counters = make_hierarchy(victim_lines=2)
        h.capture(1, line(1))
        assert counters.victim_captures == 1
        assert h.resident_tags() == {"victim": [1]}
        l2 = L2Geometry(size=4 * 1024, line_size=LINE, associativity=2)
        h2, _, _, _ = make_hierarchy(l2=l2)
        h2.capture(1, line(1))
        assert h2.resident_tags() == {"l2": [1]}

    def test_note_memory_write_bumps_epoch_and_drops_copies(self):
        l2 = L2Geometry(size=4 * 1024, line_size=LINE, associativity=2)
        h, _, _, _ = make_hierarchy(victim_lines=2, l2=l2)
        h.capture(3, line(3))
        h.fetch_line(4)                           # 4 lands in the L2
        assert h.epoch_of(3) == 0
        h.note_memory_write(3)
        h.note_memory_write(4)
        assert h.epoch_of(3) == 1
        assert h.resident_tags() == {"victim": [], "l2": []}

    def test_invalidate_page_and_span_cover_the_right_lines(self):
        h, _, _, _ = make_hierarchy(victim_lines=8)
        lpp = PAGE // LINE
        h.invalidate_page(2)
        assert h.epoch_of(2 * lpp) == 1
        assert h.epoch_of(3 * lpp - 1) == 1
        assert h.epoch_of(3 * lpp) == 0
        h.invalidate_span(2 * PAGE, 1)            # one word: first line only
        assert h.epoch_of(2 * lpp) == 2
        assert h.epoch_of(2 * lpp + 1) == 1


class TestCacheIntegration:
    def test_evicted_clean_line_victim_hits_with_correct_data(self):
        cache, h, mem, clock, counters = make_cache(victim_lines=4)
        mem.write_word(0, 42)
        cache.read(0, 0)                          # fill
        span = cache.geo.way_span
        cache.read(span, span)                    # conflict evicts tag 0
        assert counters.victim_captures == 1
        before = clock.cycles
        assert cache.read(0, 0) == 42             # victim supplies it
        assert counters.victim_hits == 1
        assert clock.cycles - before == CostModel().victim_hit

    def test_dirty_eviction_writes_back_then_captures_current_line(self):
        cache, h, mem, clock, counters = make_cache(victim_lines=4)
        cache.write(0, 0, 7)                      # dirty line, tag 0
        span = cache.geo.way_span
        cache.read(span, span)                    # evict: write-back+capture
        assert mem.read_word(0) == 7
        assert counters.victim_captures == 1
        assert cache.read(0, 0) == 7
        assert counters.victim_hits == 1

    def test_epoch_guard_blocks_capturing_a_stale_clean_alias(self):
        # The lazy-purge hazard: a clean resident copy of line T goes
        # stale when a dirty alias of T (in a different cache page) is
        # written back.  The write-back bumps T's epoch, so the stale
        # copy's fill stamp no longer matches and eviction must NOT
        # capture it — a victim cache is invisible to virtual purges.
        cache, h, mem, clock, counters = make_cache(victim_lines=4)
        page_span = cache.geo.page_size
        cache.read(0, 0)                          # clean copy, color 0
        cache.write(page_span, 0, 99)             # dirty alias, color 1
        # Evict the dirty alias: write-back makes memory 99, epoch bumps.
        cache.read(page_span + cache.geo.way_span, page_span)
        assert mem.read_word(0) == 99
        # Now evict the stale clean copy at color 0: must not be captured.
        cache.read(cache.geo.way_span, cache.geo.way_span)
        resident = h.resident_tags()["victim"]
        for tag in resident:
            taken = h.victim._lines[tag]
            assert taken[0] == np.uint64(mem.read_line(
                tag * LINE, WPL)[0]), \
                f"victim holds a stale copy of line {tag}"
        # A re-read of the line sees current memory, not the stale data.
        assert cache.read(0, 0) == 99

    def test_lost_writeback_snoop_poisons_the_line_against_capture(self):
        # snoop(write_back=False) models an injected lost coherence
        # write-back: the line is marked clean while disagreeing with
        # memory.  Its stamp is poisoned so eviction can never capture it.
        cache, h, mem, clock, counters = make_cache(victim_lines=4)
        cache.write(0, 0, 7)
        set_idx = cache.geo.set_index(0)
        assert cache.snoop(set_idx, 0, invalidate=False,
                           write_back=False) == "dirty"
        assert mem.read_word(0) == 0              # the write-back was lost
        cache.read(cache.geo.way_span, cache.geo.way_span)  # evict tag 0
        assert h.resident_tags()["victim"] == []  # corrupt line not kept

    def test_write_through_store_restamps_and_drops_lower_copies(self):
        cache, h, mem, clock, counters = make_cache(victim_lines=4,
                                                    write_through=True)
        cache.read(0, 0)
        span = cache.geo.way_span
        cache.read(span, span)                    # evict tag 0 -> victim
        assert h.resident_tags()["victim"] == [0]
        cache.write(4, 4, 5)                      # wt store to line 0
        # The write-allocate fill took line 0 out of the victim cache
        # (capturing the clean line it displaced); the store then went
        # straight to memory, and no stale copy of line 0 remains below.
        assert 0 not in h.resident_tags()["victim"]
        assert mem.read_word(4) == 5
        # The resident victim line still equals memory (clean-copy
        # invariant held across the write-through store).
        for tag in h.resident_tags()["victim"]:
            assert np.array_equal(h.victim._lines[tag],
                                  mem.read_line(tag * LINE, WPL))


class TestDegenerateHierarchyBitIdentity:
    """A hierarchy with no victim lines and no L2 charges and behaves
    exactly like the seed simulator (fetch = memory fill at line_fill).
    The machine never builds this configuration (``has_hierarchy`` is
    False), but its bit-identity is the base case of the soundness
    argument, so it is pinned here."""

    def _drive(self, cache, mem):
        observed = []
        span = cache.geo.way_span
        for i in range(6):
            cache.write(i * 4, i * 4, i + 1)
        for i in range(6):
            observed.append(cache.read(i * 4 + span, i * 4 + span))
            observed.append(cache.read(i * 4, i * 4))
        cache.flush_page_frame(0, 0, Reason.EXPLICIT)
        cache.purge_page_frame(0, 0, Reason.EXPLICIT)
        for i in range(6):
            observed.append(cache.read(i * 4, i * 4))
        return observed

    def test_values_cycles_counters_and_memory_match_bare_cache(self):
        geo = CacheGeometry(size=16 * 1024)
        results = []
        for degenerate in (False, True):
            mem = PhysicalMemory(num_pages=32, page_size=PAGE)
            clock = Clock()
            counters = Counters()
            hierarchy = (CacheHierarchy(mem, CostModel(), clock, counters,
                                        LINE) if degenerate else None)
            cache = Cache(geo, mem, CostModel(), clock, counters,
                          name="dcache", hierarchy=hierarchy)
            observed = self._drive(cache, mem)
            results.append((observed, clock.cycles, counters.snapshot(),
                            mem.page_view(0).copy()))
        bare, degenerate = results
        assert bare[0] == degenerate[0]
        assert bare[1] == degenerate[1]
        assert bare[2] == degenerate[2]
        assert np.array_equal(bare[3], degenerate[3])


class TestLruDeterminism:
    """Regression: the documented ``_victim_way`` policy — lowest-numbered
    invalid way first, then strict LRU (the stamps are unique, so argmin
    is unambiguous).  Pinned at 2 and 4 ways; a change to fill order or
    tick assignment shows up here as a different eviction sequence."""

    def _fill_order(self, assoc, touches):
        geo = CacheGeometry(size=16 * 1024, associativity=assoc)
        mem = PhysicalMemory(num_pages=64, page_size=PAGE)
        cache = Cache(geo, mem, CostModel(), Clock(), Counters(),
                      name="dcache")
        span = geo.way_span
        order = []
        for step in touches:
            before = {int(t) for t in cache._tags[:, 0] if t != -1}
            cache.read(step * span, step * span)   # same set, distinct tags
            after = {int(t) for t in cache._tags[:, 0] if t != -1}
            evicted = before - after
            order.append(int(evicted.pop()) if evicted else None)
        return order, [int(t) for t in cache._tags[:, 0]]

    def test_two_way_eviction_order(self):
        span_lines = CacheGeometry(size=16 * 1024,
                                   associativity=2).way_span // LINE
        # Fill ways 0,1 with tags 0,1; touch 0; fill 2 evicts 1 (LRU);
        # fill 3 evicts 0.
        order, tags = self._fill_order(2, [0, 1, 0, 2, 3])
        assert order == [None, None, None, 1 * span_lines, 0]
        assert tags == [3 * span_lines, 2 * span_lines]

    def test_four_way_eviction_order(self):
        span_lines = CacheGeometry(size=16 * 1024,
                                   associativity=4).way_span // LINE
        # Fill ways 0..3 in index order (invalid ways claimed lowest
        # first), touch 1 and 0, then two conflict fills evict 2 then 3.
        order, tags = self._fill_order(4, [0, 1, 2, 3, 1, 0, 4, 5])
        assert order == [None, None, None, None, None, None,
                         2 * span_lines, 3 * span_lines]
        assert tags == [0, 1 * span_lines, 4 * span_lines, 5 * span_lines]


class TestGeometryValidation:
    def test_l2_line_size_must_match_the_l1(self):
        from repro.errors import ConfigurationError
        from repro.hw.params import MachineConfig
        with pytest.raises(ConfigurationError):
            MachineConfig(l2=L2Geometry(line_size=64))

    def test_l2_geometry_rejects_non_power_of_two(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            L2Geometry(size=100 * 1000)

    def test_victim_lines_must_be_non_negative(self):
        from repro.errors import ConfigurationError
        from repro.hw.params import MachineConfig
        with pytest.raises(ConfigurationError):
            MachineConfig(victim_lines=-1)
