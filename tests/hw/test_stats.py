"""Tests for counters, the clock, and reason-tagged accounting."""

from repro.hw.stats import Clock, Counters, FaultKind, Reason


class TestClock:
    def test_advances(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(5)
        assert clock.cycles == 15


class TestReasonTaggedAccounting:
    def test_flush_attribution(self):
        counters = Counters()
        counters.record_flush("dcache", Reason.DMA_READ, 100)
        counters.record_flush("dcache", Reason.D_TO_I_COPY, 50)
        counters.record_flush("icache", Reason.DMA_READ, 10)
        assert counters.total_flushes() == 3
        assert counters.total_flushes("dcache") == 2
        assert counters.total_flushes(reason=Reason.DMA_READ) == 2
        assert counters.total_flushes("dcache", Reason.DMA_READ) == 1
        assert counters.total_flush_cycles("dcache") == 150

    def test_purge_attribution(self):
        counters = Counters()
        counters.record_purge("dcache", Reason.NEW_MAPPING, 30)
        counters.record_purge("dcache", Reason.NEW_MAPPING, 40)
        assert counters.total_purges() == 2
        assert counters.total_purge_cycles(
            "dcache", Reason.NEW_MAPPING) == 70

    def test_fault_attribution(self):
        counters = Counters()
        counters.record_fault(FaultKind.MAPPING, 300)
        counters.record_fault(FaultKind.CONSISTENCY, 300)
        counters.record_fault(FaultKind.CONSISTENCY, 300)
        assert counters.faults[FaultKind.CONSISTENCY] == 2
        assert counters.fault_cycles[FaultKind.MAPPING] == 300

    def test_snapshot_keys(self):
        snap = Counters().snapshot()
        for key in ("page_flushes", "page_purges", "mapping_faults",
                    "consistency_faults", "dma_reads", "dma_writes",
                    "d_to_i_copies", "write_backs"):
            assert key in snap
            assert snap[key] == 0

    def test_every_reason_has_a_distinct_label(self):
        labels = {str(reason) for reason in Reason}
        assert len(labels) == len(list(Reason))

    def test_fault_kinds(self):
        assert {str(k) for k in FaultKind} == {
            "mapping", "consistency", "protection"}
