"""Tests for counters, the clock, and reason-tagged accounting."""

import dataclasses

import numpy as np
import pytest

from repro.hw.stats import Clock, Counters, FaultKind, Reason


class TestClock:
    def test_advances(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(5)
        assert clock.cycles == 15

    def test_accepts_numpy_integers(self):
        # The vectorized paths compute cycle costs as numpy scalars.
        clock = Clock()
        clock.advance(np.int64(7))
        clock.advance(np.uint64(3))
        assert clock.cycles == 10
        assert isinstance(clock.cycles, int)

    def test_zero_delta_is_fine(self):
        clock = Clock()
        clock.advance(0)
        assert clock.cycles == 0

    @pytest.mark.parametrize("bad", [-1, -100, np.int64(-5)])
    def test_rejects_negative_deltas(self, bad):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(bad)
        assert clock.cycles == 0

    @pytest.mark.parametrize("bad", [1.5, 2.0, np.float64(3.0), "10",
                                     None, True])
    def test_rejects_non_integer_deltas(self, bad):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(bad)
        assert clock.cycles == 0


class TestReasonTaggedAccounting:
    def test_flush_attribution(self):
        counters = Counters()
        counters.record_flush("dcache", Reason.DMA_READ, 100)
        counters.record_flush("dcache", Reason.D_TO_I_COPY, 50)
        counters.record_flush("icache", Reason.DMA_READ, 10)
        assert counters.total_flushes() == 3
        assert counters.total_flushes("dcache") == 2
        assert counters.total_flushes(reason=Reason.DMA_READ) == 2
        assert counters.total_flushes("dcache", Reason.DMA_READ) == 1
        assert counters.total_flush_cycles("dcache") == 150

    def test_purge_attribution(self):
        counters = Counters()
        counters.record_purge("dcache", Reason.NEW_MAPPING, 30)
        counters.record_purge("dcache", Reason.NEW_MAPPING, 40)
        assert counters.total_purges() == 2
        assert counters.total_purge_cycles(
            "dcache", Reason.NEW_MAPPING) == 70

    def test_fault_attribution(self):
        counters = Counters()
        counters.record_fault(FaultKind.MAPPING, 300)
        counters.record_fault(FaultKind.CONSISTENCY, 300)
        counters.record_fault(FaultKind.CONSISTENCY, 300)
        assert counters.faults[FaultKind.CONSISTENCY] == 2
        assert counters.fault_cycles[FaultKind.MAPPING] == 300

    def test_snapshot_keys(self):
        snap = Counters().snapshot()
        for key in ("page_flushes", "page_purges", "mapping_faults",
                    "consistency_faults", "dma_reads", "dma_writes",
                    "d_to_i_copies", "write_backs"):
            assert key in snap
            assert snap[key] == 0

    def test_snapshot_includes_protection_and_recovery_counters(self):
        # These four used to be silently dropped, under-reporting chaos
        # runs in every table built from a snapshot.
        counters = Counters()
        counters.record_fault(FaultKind.PROTECTION, 300)
        counters.disk_retries = 2
        counters.tlb_parity_recoveries = 3
        counters.frames_quarantined = 1
        snap = counters.snapshot()
        assert snap["protection_faults"] == 1
        assert snap["disk_retries"] == 2
        assert snap["tlb_parity_recoveries"] == 3
        assert snap["frames_quarantined"] == 1

    def test_snapshot_is_complete(self):
        """Mutating any public Counters field must change the snapshot —
        i.e. every field is represented, so nothing can silently drop out
        of a table again."""
        baseline = Counters().snapshot()
        for f in dataclasses.fields(Counters):
            counters = Counters()
            value = getattr(counters, f.name)
            if isinstance(value, int):
                setattr(counters, f.name, value + 1)
            elif f.name in ("page_flushes", "flush_cycles",
                            "page_purges", "purge_cycles"):
                # mutate exactly this Counter, not its count/cycles twin
                value[("dcache", Reason.EXPLICIT)] += 5
            elif f.name in ("faults", "fault_cycles"):
                value[FaultKind.PROTECTION] += 5
            else:  # a new field landed without snapshot coverage
                raise AssertionError(
                    f"no mutation strategy for Counters.{f.name}")
            assert counters.snapshot() != baseline, \
                f"Counters.{f.name} is not represented in snapshot()"

    def test_every_reason_has_a_distinct_label(self):
        labels = {str(reason) for reason in Reason}
        assert len(labels) == len(list(Reason))

    def test_fault_kinds(self):
        assert {str(k) for k in FaultKind} == {
            "mapping", "consistency", "protection"}
