"""Tests for the physical memory substrate."""

import numpy as np
import pytest

from repro.errors import AddressError
from repro.hw.physmem import PhysicalMemory


@pytest.fixture
def mem():
    return PhysicalMemory(num_pages=8, page_size=4096)


class TestWordAccess:
    def test_starts_zeroed(self, mem):
        assert mem.read_word(0) == 0
        assert mem.read_word(mem.size - 4) == 0

    def test_write_read_roundtrip(self, mem):
        mem.write_word(128, 0xDEADBEEF)
        assert mem.read_word(128) == 0xDEADBEEF

    def test_unaligned_word_rejected(self, mem):
        with pytest.raises(AddressError):
            mem.read_word(2)

    def test_out_of_range_rejected(self, mem):
        with pytest.raises(AddressError):
            mem.write_word(mem.size, 1)

    def test_negative_rejected(self, mem):
        with pytest.raises(AddressError):
            mem.read_word(-4)


class TestLineAccess:
    def test_line_roundtrip(self, mem):
        values = np.arange(8, dtype=np.uint64)
        mem.write_line(64, values)
        assert np.array_equal(mem.read_line(64, 8), values)

    def test_read_line_returns_copy(self, mem):
        line = mem.read_line(0, 8)
        line[0] = 99
        assert mem.read_word(0) == 0


class TestPageAccess:
    def test_page_roundtrip(self, mem):
        values = np.arange(1024, dtype=np.uint64)
        mem.write_page(3, values)
        assert np.array_equal(mem.read_page(3), values)
        assert mem.read_word(3 * 4096) == 0
        assert mem.read_word(3 * 4096 + 4) == 1

    def test_zero_page(self, mem):
        mem.write_page(2, np.ones(1024, dtype=np.uint64))
        mem.zero_page(2)
        assert not mem.read_page(2).any()

    def test_wrong_size_rejected(self, mem):
        with pytest.raises(AddressError):
            mem.write_page(0, np.zeros(100, dtype=np.uint64))

    def test_page_bounds(self, mem):
        with pytest.raises(AddressError):
            mem.read_page(8)

    def test_page_view_is_read_only(self, mem):
        view = mem.page_view(0)
        with pytest.raises(ValueError):
            view[0] = 1

    def test_page_helpers(self, mem):
        assert mem.page_base(2) == 8192
        assert mem.page_of(8192) == 2
        assert mem.page_of(8191) == 1
        with pytest.raises(AddressError):
            mem.page_base(9)
