"""Property: the buffer cache's write-behind never loses or reorders
data — after a sync, the platter holds exactly the last version written
to every block, for any interleaving of reads, writes and ticks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F

N_BLOCKS = 4

# (action, block, payload-seed)
ops = st.lists(
    st.tuples(st.sampled_from(["write", "read", "tick"]),
              st.integers(0, N_BLOCKS - 1),
              st.integers(0, 2**30)),
    min_size=1, max_size=40)


def fresh_kernel():
    return Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=128),
                  buffer_cache_pages=3,     # smaller than N_BLOCKS: evictions
                  with_unix_server=False)


class TestWriteBehindProperty:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_platter_holds_last_writes_after_sync(self, actions):
        kernel = fresh_kernel()
        file_id = 9
        kernel.disk.preload(file_id, N_BLOCKS)
        last_written = {}
        scratch = kernel.allocate_frame()
        for action, block, seed in actions:
            if action == "write":
                values = np.full(1024, seed, dtype=np.uint64)
                kernel.pmap.prepare_dma_write(scratch)
                kernel.machine.dma.dma_write(scratch, values)
                kernel.buffer_cache.write_block_from_frame(file_id, block,
                                                           scratch)
                last_written[block] = values
            elif action == "read":
                kernel.buffer_cache.read_block(file_id, block)
            else:
                kernel.buffer_cache.tick()
        kernel.buffer_cache.sync()
        for block, values in last_written.items():
            assert np.array_equal(kernel.disk.block(file_id, block), values)
        assert kernel.machine.oracle.clean

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_reads_always_return_the_latest_version(self, actions):
        kernel = fresh_kernel()
        file_id = 9
        kernel.disk.preload(file_id, N_BLOCKS)
        last = {}
        scratch = kernel.allocate_frame()
        for action, block, seed in actions:
            if action == "write":
                values = np.full(1024, seed, dtype=np.uint64)
                kernel.pmap.prepare_dma_write(scratch)
                kernel.machine.dma.dma_write(scratch, values)
                kernel.buffer_cache.write_block_from_frame(file_id, block,
                                                           scratch)
                last[block] = int(values[0])
            else:
                frame = kernel.buffer_cache.read_block(file_id, block)
                got = kernel.pmap.read_frame(frame)
                if block in last:
                    assert int(got[0]) == last[block]
                kernel.buffer_cache.tick()
