"""Hypothesis stateful testing of the pmap layer.

A rule-based state machine drives the machine-dependent layer directly —
mapping, unmapping, reading and writing through arbitrary aliases,
preparing pages and scheduling DMA — while two invariants are checked
after every step: the staleness oracle stays clean (the machine raises on
any stale transfer) and every physical page's consistency encoding stays
structurally valid (Table 3).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.hw.machine import Machine
from repro.hw.params import small_machine
from repro.prot import AccessKind, Prot
from repro.vm.pmap import Pmap
from repro.vm.policy import CONFIG_F

PAGE = 4096
FRAMES = (3, 4, 5)        # physical pages under test
VPAGES = tuple(range(8, 24))


class PmapMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = Machine(small_machine())
        self.pmap = Pmap(self.machine, CONFIG_F)
        self.machine.fault_handler = self._fault
        self.mapped: dict[int, int] = {}     # vpage -> ppage
        self.next_value = 1

    def _fault(self, info):
        self.pmap.consistency_fault(info.asid, info.vaddr // PAGE,
                                    info.access)

    # ---- rules ------------------------------------------------------------------

    @rule(vpage=st.sampled_from(VPAGES), ppage=st.sampled_from(FRAMES),
          write=st.booleans())
    def map_page(self, vpage, ppage, write):
        if vpage in self.mapped:
            return
        access = AccessKind.WRITE if write else AccessKind.READ
        self.pmap.enter(1, vpage, ppage, Prot.READ_WRITE, access)
        self.mapped[vpage] = ppage

    @rule(vpage=st.sampled_from(VPAGES))
    def unmap_page(self, vpage):
        if vpage not in self.mapped:
            return
        self.pmap.remove(1, vpage)
        del self.mapped[vpage]

    @precondition(lambda self: self.mapped)
    @rule(data=st.data(), word=st.integers(0, 15))
    def write_word(self, data, word):
        vpage = data.draw(st.sampled_from(sorted(self.mapped)))
        self.machine.write(1, vpage * PAGE + word * 4, self.next_value)
        self.next_value += 1

    @precondition(lambda self: self.mapped)
    @rule(data=st.data(), word=st.integers(0, 15))
    def read_word(self, data, word):
        vpage = data.draw(st.sampled_from(sorted(self.mapped)))
        # the machine checks the value against the oracle internally
        self.machine.read(1, vpage * PAGE + word * 4)

    @rule(ppage=st.sampled_from(FRAMES))
    def dma_out(self, ppage):
        self.pmap.prepare_dma_read(ppage)
        self.machine.dma.dma_read(ppage)     # oracle-checked transfer

    @rule(ppage=st.sampled_from(FRAMES), fill=st.integers(0, 2**30))
    def dma_in(self, ppage, fill):
        import numpy as np
        self.pmap.prepare_dma_write(ppage)
        self.machine.dma.dma_write(
            ppage, np.full(1024, fill, dtype=np.uint64))

    @rule(ppage=st.sampled_from(FRAMES), hint=st.sampled_from(VPAGES))
    def recycle_frame(self, ppage, hint):
        # only frames with no live mappings can be re-prepared
        if any(p == ppage for p in self.mapped.values()):
            return
        self.pmap.zero_fill_page(ppage, ultimate_vpage=hint)

    # ---- invariants ------------------------------------------------------------------

    @invariant()
    def oracle_is_clean(self):
        assert self.machine.oracle.clean

    @invariant()
    def page_states_structurally_valid(self):
        for state in self.pmap.page_states.values():
            state.validate()

    @invariant()
    def at_most_one_dirty_cache_page_per_frame(self):
        for ppage in FRAMES:
            pa = ppage * PAGE
            assert len(self.machine.dcache.dirty_cache_pages(pa)) <= 1


PmapMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestPmapStateMachine = PmapMachine.TestCase
