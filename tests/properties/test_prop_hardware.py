"""Property-based tests of the cache simulator against a plain reference.

The reference model is a flat dict of physical words (no cache at all).
Accesses through a *single* virtual page per physical page — so no
aliasing, hence no consistency hazard — must agree with the reference in
every cache configuration.  Aliased accesses through aligned addresses
must also agree (physical tags resolve them).  Unaligned aliasing is
deliberately excluded: divergence there is the paper's hazard, exercised
elsewhere.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, Reason

PAGE = 4096
NPAGES = 8


def make_cache(**kw):
    geo = CacheGeometry(size=kw.pop("size", 8 * 1024), **kw)
    mem = PhysicalMemory(NPAGES, PAGE)
    return Cache(geo, mem, CostModel(), Clock(), Counters()), mem


# (ppage, word, value) triples; identity mapping vpage == ppage.
accesses = st.lists(
    st.tuples(st.integers(0, NPAGES - 1), st.integers(0, 1023),
              st.integers(0, 2**32 - 1), st.booleans()),
    min_size=1, max_size=60)


class TestAgainstFlatReference:
    @given(accesses)
    @settings(max_examples=150)
    def test_identity_mapped_accesses_match_reference(self, ops):
        cache, mem = make_cache()
        reference = {}
        for ppage, word, value, is_write in ops:
            addr = ppage * PAGE + word * 4
            if is_write:
                cache.write(addr, addr, value)
                reference[addr] = value
            else:
                got = cache.read(addr, addr)
                assert got == reference.get(addr, 0)

    @given(accesses)
    @settings(max_examples=100)
    def test_write_through_matches_reference(self, ops):
        cache, mem = make_cache(write_through=True)
        reference = {}
        for ppage, word, value, is_write in ops:
            addr = ppage * PAGE + word * 4
            if is_write:
                cache.write(addr, addr, value)
                reference[addr] = value
                assert mem.read_word(addr) == value   # memory always fresh
            else:
                assert cache.read(addr, addr) == reference.get(addr, 0)

    @given(accesses)
    @settings(max_examples=100)
    def test_two_way_matches_reference(self, ops):
        cache, mem = make_cache(size=8 * 1024, associativity=2)
        reference = {}
        for ppage, word, value, is_write in ops:
            addr = ppage * PAGE + word * 4
            if is_write:
                cache.write(addr, addr, value)
                reference[addr] = value
            else:
                assert cache.read(addr, addr) == reference.get(addr, 0)

    @given(accesses)
    @settings(max_examples=100)
    def test_aligned_aliases_match_reference(self, ops):
        # Each access alternates between two *aligned* virtual windows for
        # the same physical page; the physical tag must resolve them.
        cache, mem = make_cache()
        span = cache.geo.way_span
        reference = {}
        for i, (ppage, word, value, is_write) in enumerate(ops):
            paddr = ppage * PAGE + word * 4
            vaddr = paddr + (span if i % 2 else 0)   # aligned alias
            if is_write:
                cache.write(vaddr, paddr, value)
                reference[paddr] = value
            else:
                assert cache.read(vaddr, paddr) == reference.get(paddr, 0)

    @given(accesses)
    @settings(max_examples=60)
    def test_flush_everything_syncs_memory_with_reference(self, ops):
        cache, mem = make_cache()
        reference = {}
        for ppage, word, value, is_write in ops:
            addr = ppage * PAGE + word * 4
            if is_write:
                cache.write(addr, addr, value)
                reference[addr] = value
            else:
                cache.read(addr, addr)
        for ppage in range(NPAGES):
            cache.flush_page_frame(cache.geo.cache_page(ppage * PAGE),
                                   ppage * PAGE, Reason.EXPLICIT)
        for addr, value in reference.items():
            assert mem.read_word(addr) == value

    @given(st.integers(0, NPAGES - 1), st.data())
    @settings(max_examples=60)
    def test_page_ops_equal_word_ops(self, ppage, data):
        values = np.array(
            data.draw(st.lists(st.integers(0, 2**32 - 1),
                               min_size=1024, max_size=1024)),
            dtype=np.uint64)
        by_page, _ = make_cache()
        by_word, _ = make_cache()
        base = ppage * PAGE
        by_page.write_page(base, base, values)
        for i in range(1024):
            by_word.write(base + 4 * i, base + 4 * i, int(values[i]))
        assert np.array_equal(by_page.read_page(base, base),
                              by_word.read_page(base, base))
