"""The headline property: under every policy, arbitrary interleavings of
CPU accesses through arbitrary alias sets, remapping, and DMA in both
directions never transfer stale data.

The staleness oracle raises on the first inconsistent value, so a
completed run *is* the proof for that interleaving.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import (CONFIG_A, CONFIG_B, CONFIG_D, CONFIG_F,
                             SYSTEM_TUT)
from repro.workloads.random_ops import AliasStressor

POLICIES = {
    "A-eager": CONFIG_A,
    "B-lazy": CONFIG_B,
    "D-aligned": CONFIG_D,
    "F-full": CONFIG_F,
    "Tut": SYSTEM_TUT,
}


def stress(policy, seed, steps=150, n_tasks=2, n_pages=3):
    kernel = Kernel(policy=policy, config=MachineConfig(phys_pages=192))
    stressor = AliasStressor(kernel, n_tasks=n_tasks, n_pages=n_pages,
                             seed=seed)
    stressor.run(steps)
    return kernel


class TestNoStaleDataEver:
    @pytest.mark.parametrize("policy", POLICIES.values(),
                             ids=list(POLICIES))
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_interleavings_stay_consistent(self, policy, seed):
        kernel = stress(policy, seed)
        assert kernel.machine.oracle.clean
        assert kernel.machine.oracle.checks > 0

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_no_modified_bit_variant_stays_consistent(self, seed):
        policy = CONFIG_F.derive("F-nomod", "property",
                                 use_modified_bit=False)
        kernel = stress(policy, seed)
        assert kernel.machine.oracle.clean

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_colored_free_list_stays_consistent(self, seed):
        policy = CONFIG_F.derive("F-color", "property",
                                 colored_free_list=True)
        kernel = stress(policy, seed)
        assert kernel.machine.oracle.clean

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_many_tasks_many_pages(self, seed):
        kernel = Kernel(policy=CONFIG_F,
                        config=MachineConfig(phys_pages=256))
        AliasStressor(kernel, n_tasks=4, n_pages=6, seed=seed).run(200)
        assert kernel.machine.oracle.clean

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_consistent_under_memory_pressure_with_swapping(self, seed):
        # A small machine forces the pageout daemon to interleave swap
        # traffic (DMA in both directions, mapping teardown, frame
        # recycling) with the alias stress — still no stale transfers.
        kernel = Kernel(policy=CONFIG_F,
                        config=MachineConfig(phys_pages=72),
                        buffer_cache_pages=8)
        stressor = AliasStressor(kernel, n_tasks=3, n_pages=4, seed=seed)
        # extra anonymous ballast so the free list actually runs dry
        for proc in stressor.procs:
            vpage = proc.task.allocate_anon(8)
            for i in range(8):
                proc.task.write(vpage + i, 0, i)
        stressor.run(150)
        assert kernel.machine.oracle.clean

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_global_address_space_stays_consistent(self, seed):
        from repro.vm.policy import CONFIG_GLOBAL
        kernel = stress(CONFIG_GLOBAL, seed)
        assert kernel.machine.oracle.clean

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_sun_uncached_stays_consistent(self, seed):
        from repro.vm.policy import SYSTEM_SUN
        kernel = stress(SYSTEM_SUN, seed)
        assert kernel.machine.oracle.clean
