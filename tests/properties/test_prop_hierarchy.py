"""Property-based tests for the cache-hierarchy matrix.

Two families, mirroring :mod:`tests.properties.test_prop_smp`:

* every hierarchy configuration (N-way L1, victim cache, L2, alone and
  combined, write-back and write-through) returns the same values as a
  flat physical-memory oracle under random op sequences that include the
  paper's fault surface — coherence snoops and DMA writes behind the
  caches, each followed by the software protocol the paper prescribes;
* the degenerate configuration (1-way, no victim, no L2) is bit-identical
  to the seed direct-mapped simulator — values, memory image, cycles,
  and the full counter snapshot (the cluster-of-one pattern).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import Cache
from repro.hw.hierarchy import CacheHierarchy
from repro.hw.params import CacheGeometry, CostModel, L2Geometry
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters

PAGE = 4096
LINE = 32

#: the configuration matrix: (size, associativity, write_through,
#: victim lines, l2 geometry?).  Each way must span whole pages, so the
#: 4-way L1 is 16 KiB (way span == one page, the minimum legal shape).
CONFIGS = {
    "2way": (8 * 1024, 2, False, 0, None),
    "4way": (16 * 1024, 4, False, 0, None),
    "victim8": (8 * 1024, 1, False, 8, None),
    "l2": (8 * 1024, 1, False, 0,
           L2Geometry(size=8 * 1024, associativity=2)),
    "2way+victim4+l2": (8 * 1024, 2, False, 4,
                        L2Geometry(size=8 * 1024, associativity=2)),
    "wt+victim8": (8 * 1024, 1, True, 8, None),
}


def build(name):
    size, assoc, wt, victim, l2 = CONFIGS[name]
    geo = CacheGeometry(size=size, associativity=assoc,
                        write_through=wt)
    mem = PhysicalMemory(8, PAGE)
    clock, counters = Clock(), Counters()
    hierarchy = CacheHierarchy(mem, CostModel(), clock, counters, LINE,
                               victim_lines=victim, l2=l2)
    cache = Cache(geo, mem, CostModel(), clock, counters, name="dcache",
                  hierarchy=hierarchy)
    return cache, hierarchy, mem


# Ops stay within physical page 0; vaddr aliases the paddr through one of
# three way-span-aligned windows so conflict evictions (the traffic that
# exercises the victim cache and L2) happen constantly.  "snoop" and
# "dma" are the armed faults: a coherence invalidation of the addressed
# line, and a memory write behind the caches — each applied with the
# value-preserving protocol the paper requires (write-back before
# discard; flush + purge + lower-level invalidate around DMA).
ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "read_run", "write_run",
                               "flush", "snoop", "dma"]),
              st.integers(0, 255),      # word within the physical page
              st.integers(0, 2),        # aliasing window
              st.integers(0, 2**30)),   # value / run length seed
    min_size=1, max_size=60)


def flush_frame_everywhere(cache):
    for cache_page in range(cache.geo.num_cache_pages):
        cache.flush_page_frame(cache_page, 0)


def purge_frame_everywhere(cache):
    for cache_page in range(cache.geo.num_cache_pages):
        cache.purge_page_frame(cache_page, 0)


def drive_against_oracle(cache, hierarchy, mem, op_list):
    oracle = {}
    span = cache.geo.way_span
    for op, word, window, value in op_list:
        paddr = word * 4
        vaddr = paddr + window * span
        if op == "read":
            assert cache.read(vaddr, paddr) == oracle.get(paddr, 0)
        elif op == "write":
            cache.write(vaddr, paddr, value)
            oracle[paddr] = value
        elif op == "read_run":
            n = 1 + value % 8
            n = min(n, (PAGE - paddr) // 4)
            got = cache.read_run(vaddr, paddr, n)
            assert [int(v) for v in got] \
                == [oracle.get(paddr + i * 4, 0) for i in range(n)]
        elif op == "write_run":
            values = [value, value ^ 1, value ^ 2]
            values = values[:max(1, (PAGE - paddr) // 4)]
            cache.write_run(vaddr, paddr, values)
            for i, v in enumerate(values):
                oracle[paddr + i * 4] = v
        elif op == "flush":
            flush_frame_everywhere(cache)
        elif op == "snoop":
            # Coherence fault: another CPU claims the line.  Write-back
            # + invalidate preserves the memory image, so the oracle is
            # untouched.
            cache.snoop(cache.geo.set_index(vaddr), paddr // LINE,
                        invalidate=True, write_back=True)
        else:                            # dma — memory written behind us
            flush_frame_everywhere(cache)
            mem.write_word(paddr, value)
            hierarchy.invalidate_span(paddr, 1)
            purge_frame_everywhere(cache)
            oracle[paddr] = value


class TestHierarchyMatchesFlatOracle:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @given(op_list=ops)
    @settings(max_examples=60, deadline=None)
    def test_values_match_flat_oracle(self, name, op_list):
        cache, hierarchy, mem = build(name)
        drive_against_oracle(cache, hierarchy, mem, op_list)

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @given(op_list=ops)
    @settings(max_examples=30, deadline=None)
    def test_lower_levels_always_hold_current_memory(self, name, op_list):
        # The clean-copy invariant itself, checked after every fault op:
        # each line resident below the L1 equals current physical memory.
        cache, hierarchy, mem = build(name)
        drive_against_oracle(cache, hierarchy, mem, op_list)
        resident = hierarchy.resident_tags()
        for tag in resident.get("victim", []):
            assert np.array_equal(hierarchy.victim._lines[tag],
                                  mem.read_line(tag * LINE, LINE // 4))
        if hierarchy.l2 is not None:
            for tag in resident.get("l2", []):
                assert np.array_equal(hierarchy.l2.lookup(tag),
                                      mem.read_line(tag * LINE, LINE // 4))


# --- degenerate-configuration bit identity ----------------------------------

mixed_ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "read_run", "write_run",
                               "flush", "purge"]),
              st.integers(0, 100),      # word within the first page
              st.integers(0, 2),        # aliasing window
              st.integers(0, 2**30)),   # value / run length seed
    min_size=1, max_size=50)


def drive(cache, op_list, geo):
    observed = []
    for op, word, window, value in op_list:
        paddr = word * 4
        vaddr = paddr + window * geo.way_span
        if op == "read":
            observed.append(cache.read(vaddr, paddr))
        elif op == "write":
            cache.write(vaddr, paddr, value)
        elif op == "read_run":
            observed.extend(int(v) for v in
                            cache.read_run(vaddr, paddr, 1 + value % 8))
        elif op == "write_run":
            cache.write_run(vaddr, paddr, [value, value ^ 1, value ^ 2])
        elif op == "flush":
            cache.flush_page_frame(0, 0)
        else:
            cache.purge_page_frame(0, 0)
    return observed


class TestDegenerateConfigurationIsTheSeedSimulator:
    @given(mixed_ops)
    @settings(max_examples=100, deadline=None)
    def test_empty_hierarchy_is_bit_identical_to_a_bare_cache(self, op_list):
        geo = CacheGeometry(size=8 * 1024)
        flat_mem = PhysicalMemory(8, PAGE)
        flat_clock, flat_counters = Clock(), Counters()
        flat = Cache(geo, flat_mem, CostModel(), flat_clock, flat_counters)

        deg_mem = PhysicalMemory(8, PAGE)
        deg_clock, deg_counters = Clock(), Counters()
        hierarchy = CacheHierarchy(deg_mem, CostModel(), deg_clock,
                                   deg_counters, geo.line_size)
        degenerate = Cache(geo, deg_mem, CostModel(), deg_clock,
                           deg_counters, hierarchy=hierarchy)

        assert drive(flat, op_list, geo) == drive(degenerate, op_list, geo)
        flat.flush_page_frame(0, 0)
        degenerate.flush_page_frame(0, 0)
        assert np.array_equal(flat_mem.page_view(0), deg_mem.page_view(0))
        assert flat_clock.cycles == deg_clock.cycles
        assert flat_counters.snapshot() == deg_counters.snapshot()
