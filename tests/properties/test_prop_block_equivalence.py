"""Property tests: the batched block engine is observationally
equivalent to the word loop it replaces.

``Cache.read_run``/``write_run`` and ``Machine.read_block``/
``write_block`` promise *bit-identical* behaviour to the per-word
access loop: the same clock cycles, the same counters (hits, misses,
write-backs, TLB traffic), the same tag/dirty/data/LRU state, the same
memory and TLB contents, the same values and the same fault sequence —
including blocks that cross page boundaries, hit read-only or unmapped
pages mid-block, traverse uncached segments, or take consistency faults
against an unaligned alias.  These tests state that promise as
properties and check the complete state, not a summary of it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.hw.cache as cache_mod
from repro.hw.cache import Cache
from repro.hw.machine import Machine
from repro.hw.params import (WORD_SIZE, CacheGeometry, CostModel,
                             MachineConfig, small_machine)
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, FaultKind
from repro.prot import Prot

PAGE = 4096
WPP = PAGE // WORD_SIZE
NPAGES = 8

# ---------------------------------------------------------------------------
# Cache level: read_run / write_run vs the word loop.
# ---------------------------------------------------------------------------

VARIANTS = [
    {},                            # the 720: direct mapped, write back
    {"write_through": True},
    {"physically_indexed": True},
    {"associativity": 2},          # takes the scalar fallback
]


def make_cache(**kw):
    geo = CacheGeometry(size=kw.pop("size", 8 * 1024), **kw)
    mem = PhysicalMemory(NPAGES, PAGE)
    return Cache(geo, mem, CostModel(), Clock(), Counters()), mem


def cache_state(cache, mem):
    c = cache.counters
    return (cache.clock.cycles, cache._tick,
            cache._tags.tolist(), cache._dirty.tolist(),
            cache._data.tolist(), cache._lru.tolist(),
            (c.read_hits, c.read_misses, c.write_hits, c.write_misses,
             c.write_backs),
            mem._words.tolist())


# Identity-mapped word accesses used to put both caches into the same
# (arbitrary) warm state before the run under test.
warmup = st.lists(
    st.tuples(st.integers(0, NPAGES - 1), st.integers(0, WPP - 1),
              st.integers(0, 2**32 - 1), st.booleans()),
    max_size=40)

# A run: (page, start word, length fraction) — length is clipped to the
# page so the run is always valid.
runs = st.tuples(st.integers(0, NPAGES - 1), st.integers(0, WPP - 1),
                 st.integers(1, WPP))


def warm(cache, ops):
    for ppage, word, value, is_write in ops:
        addr = ppage * PAGE + word * WORD_SIZE
        if is_write:
            cache.write(addr, addr, value)
        else:
            cache.read(addr, addr)


class TestRunsEqualWordLoops:
    @given(warmup, runs, st.sampled_from(VARIANTS))
    @settings(max_examples=150, deadline=None)
    def test_read_run(self, ops, run, kw):
        ppage, start, length = run
        n = min(length, WPP - start)
        by_run, mem_a = make_cache(**kw)
        by_word, mem_b = make_cache(**kw)
        warm(by_run, ops)
        warm(by_word, ops)
        base = ppage * PAGE + start * WORD_SIZE

        got = by_run.read_run(base, base, n)
        want = [by_word.read(base + i * WORD_SIZE, base + i * WORD_SIZE)
                for i in range(n)]

        assert got.tolist() == want
        assert cache_state(by_run, mem_a) == cache_state(by_word, mem_b)

    @given(warmup, runs, st.sampled_from(VARIANTS))
    @settings(max_examples=150, deadline=None)
    def test_write_run(self, ops, run, kw):
        ppage, start, length = run
        n = min(length, WPP - start)
        by_run, mem_a = make_cache(**kw)
        by_word, mem_b = make_cache(**kw)
        warm(by_run, ops)
        warm(by_word, ops)
        base = ppage * PAGE + start * WORD_SIZE
        values = np.arange(7, 7 + n, dtype=np.uint64)

        by_run.write_run(base, base, values)
        for i in range(n):
            by_word.write(base + i * WORD_SIZE, base + i * WORD_SIZE,
                          int(values[i]))

        assert cache_state(by_run, mem_a) == cache_state(by_word, mem_b)

    @given(warmup, st.integers(0, NPAGES - 1), st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_short_runs_vectorized(self, ops, ppage, n):
        # Below RUN_FALLBACK_WORDS the run APIs normally take the word
        # loop; lowering the cutoff must not change what they compute.
        saved = cache_mod.RUN_FALLBACK_WORDS
        cache_mod.RUN_FALLBACK_WORDS = 1
        try:
            by_run, mem_a = make_cache()
            by_word, mem_b = make_cache()
            warm(by_run, ops)
            warm(by_word, ops)
            base = ppage * PAGE
            by_run.write_run(base, base, np.arange(n, dtype=np.uint64))
            got = by_run.read_run(base, base, n)
            for i in range(n):
                by_word.write(base + i * WORD_SIZE, base + i * WORD_SIZE, i)
            want = [by_word.read(base + i * WORD_SIZE, base + i * WORD_SIZE)
                    for i in range(n)]
            assert got.tolist() == want
            assert cache_state(by_run, mem_a) == cache_state(by_word, mem_b)
        finally:
            cache_mod.RUN_FALLBACK_WORDS = saved


# ---------------------------------------------------------------------------
# Machine level: read_block / write_block vs the word loop, including
# page crossings, faults mid-block and uncached segments.
# ---------------------------------------------------------------------------

SPAN_PAGES = 6                       # pages 0-5 of the test address space
SPAN = SPAN_PAGES * WPP
ASID = 1


class SimpleOS:
    """Translation source + fault handler; resolves every fault by
    mapping the page read-write to a page-determined frame."""

    def __init__(self, machine):
        self.machine = machine
        self.mappings = {}
        self.faults = []
        machine.translation_source = (
            lambda asid, vpage: self.mappings.get((asid, vpage)))
        machine.fault_handler = self.fault

    def map(self, asid, vpage, ppage, prot=Prot.ALL, uncached=False):
        self.mappings[(asid, vpage)] = (ppage, prot, uncached)
        self.machine.tlb.invalidate(asid, vpage)

    def fault(self, info):
        self.faults.append((info.asid, info.vaddr, info.access))
        self.map(info.asid, info.vaddr // PAGE, 40 + info.vaddr // PAGE)


def make_rig():
    machine = Machine(small_machine())
    os_ = SimpleOS(machine)
    for vpage in (0, 1, 2):
        os_.map(ASID, vpage, 10 + vpage)
    os_.map(ASID, 3, 13, Prot.READ)    # writes fault mid-block
    os_.map(ASID, 4, 14, uncached=True)
    # page 5 unmapped: reads and writes fault
    return machine, os_


def assert_machines_identical(ma, osa, mb, osb):
    assert ma.clock.cycles == mb.clock.cycles
    assert ma.counters == mb.counters
    assert np.array_equal(ma.dcache._tags, mb.dcache._tags)
    assert np.array_equal(ma.dcache._dirty, mb.dcache._dirty)
    assert np.array_equal(ma.dcache._data, mb.dcache._data)
    assert np.array_equal(ma.dcache._lru, mb.dcache._lru)
    assert ma.dcache._tick == mb.dcache._tick
    assert np.array_equal(ma.memory._words, mb.memory._words)
    assert sorted(ma.tlb._map.items()) == sorted(mb.tlb._map.items())
    assert osa.faults == osb.faults


# Blocks: (start word, requested length, is_write); lengths are clipped
# to the address span, so blocks may cross several page boundaries.
blocks = st.lists(
    st.tuples(st.integers(0, SPAN - 1), st.integers(1, 1500),
              st.booleans()),
    min_size=1, max_size=6)


class TestBlocksEqualWordLoops:
    @given(blocks)
    @settings(max_examples=60, deadline=None)
    def test_blocks(self, ops):
        by_block, os_a = make_rig()
        by_word, os_b = make_rig()
        token = 0
        for start, length, is_write in ops:
            n = min(length, SPAN - start)
            base = start * WORD_SIZE
            if is_write:
                values = np.arange(token, token + n, dtype=np.uint64)
                by_block.write_block(ASID, base, values)
                for i in range(n):
                    by_word.write(ASID, base + i * WORD_SIZE, token + i)
                token += n
            else:
                got = by_block.read_block(ASID, base, n)
                want = [by_word.read(ASID, base + i * WORD_SIZE)
                        for i in range(n)]
                assert got.tolist() == want
        assert_machines_identical(by_block, os_a, by_word, os_b)

    def test_write_fault_mid_block_at_read_only_page(self):
        # A write crossing from page 2 into read-only page 3 faults at
        # the boundary word on both paths, with the same fault address.
        by_block, os_a = make_rig()
        by_word, os_b = make_rig()
        start = 2 * WPP + WPP - 8           # last 8 words of page 2...
        n = 24                              # ...plus 16 words of page 3
        base = start * WORD_SIZE
        by_block.write_block(ASID, base,
                             np.arange(n, dtype=np.uint64))
        for i in range(n):
            by_word.write(ASID, base + i * WORD_SIZE, i)
        assert os_a.faults == [(ASID, 3 * PAGE, os_a.faults[0][2])]
        assert_machines_identical(by_block, os_a, by_word, os_b)

    def test_block_through_uncached_segment(self):
        # Page 3 is readable, page 4 uncached, page 5 unmapped: one read
        # block traverses cached, uncached and faulting segments.
        by_block, os_a = make_rig()
        by_word, os_b = make_rig()
        start = 3 * WPP + 1000
        n = 2 * WPP                          # ends inside page 5
        base = start * WORD_SIZE
        got = by_block.read_block(ASID, base, n)
        want = [by_word.read(ASID, base + i * WORD_SIZE) for i in range(n)]
        assert got.tolist() == want
        assert os_a.faults and os_a.faults[0][1] == 5 * PAGE
        assert_machines_identical(by_block, os_a, by_word, os_b)

    def test_notifier_fires_once_per_page_segment(self):
        machine, os_ = make_rig()
        notes = []
        machine.write_notifier = (
            lambda asid, vpage: notes.append((asid, vpage)))
        base = (WPP - 4) * WORD_SIZE         # crosses page 0 -> 1
        machine.write_block(ASID, base, np.arange(8, dtype=np.uint64))
        assert notes == [(ASID, 0), (ASID, 1)]


# ---------------------------------------------------------------------------
# Kernel level: block accesses through an unaligned alias take the same
# consistency faults, at the same cost, as the word loop.
# ---------------------------------------------------------------------------

class TestConsistencyFaultsMidBlock:
    N_PAGES = 2

    def _ping_pong(self, use_blocks):
        from repro.kernel.kernel import Kernel
        from repro.vm.policy import CONFIG_F
        from repro.vm.vm_object import Backing, VMObject

        kernel = Kernel(policy=CONFIG_F,
                        config=MachineConfig(phys_pages=128),
                        with_unix_server=False)
        writer = kernel.create_task("writer")
        reader = kernel.create_task("reader")
        obj = VMObject(self.N_PAGES, Backing.ZERO_FILL)
        w_base = writer.map_shared(obj, Prot.READ_WRITE)
        ncp = kernel.machine.dcache.geo.num_cache_pages
        color = (writer.space.cache_page_of(w_base) + 1) % ncp
        r_base = reader.map_shared(obj, Prot.READ_WRITE, color=color)

        n = self.N_PAGES * WPP               # spans a page boundary
        for round_ in range(3):
            values = list(range(round_ * n, round_ * n + n))
            if use_blocks:
                writer.write_block(w_base, 0, values)
                got = reader.read_block(r_base, 0, n).tolist()
            else:
                for i, value in enumerate(values):
                    writer.write(w_base + i // WPP, i % WPP, value)
                got = [reader.read(r_base + i // WPP, i % WPP)
                       for i in range(n)]
            assert got == values             # the alias stays coherent
        return kernel

    def test_unaligned_alias_ping_pong(self):
        by_word = self._ping_pong(use_blocks=False)
        by_block = self._ping_pong(use_blocks=True)
        # The scenario really does take consistency faults...
        faults = by_block.machine.counters.faults[FaultKind.CONSISTENCY]
        assert faults > 0
        # ...and the block path takes exactly the word loop's faults,
        # cycles and counter values.
        assert (by_block.machine.clock.cycles
                == by_word.machine.clock.cycles)
        assert by_block.machine.counters == by_word.machine.counters
