"""Property-based tests for the coherent-cluster extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster
from repro.hw.stats import Clock, Counters

PAGE = 4096


def make_cluster(n_cpus):
    geo = CacheGeometry(size=8 * 1024)
    mem = PhysicalMemory(8, PAGE)
    return CoherentCluster(n_cpus, geo, mem, CostModel(), Clock(),
                           Counters()), geo


aligned_ops = st.lists(
    st.tuples(st.integers(0, 2),        # cpu
              st.integers(0, 127),      # word within the first page
              st.integers(0, 2),        # which aligned window
              st.integers(0, 2**30),    # value
              st.booleans()),           # write?
    min_size=1, max_size=60)


class TestCoherentClusterProperties:
    @given(aligned_ops)
    @settings(max_examples=150)
    def test_aligned_sharing_matches_flat_reference(self, ops):
        cluster, geo = make_cluster(3)
        reference = {}
        for cpu, word, window, value, is_write in ops:
            paddr = word * 4
            vaddr = paddr + window * geo.way_span
            if is_write:
                cluster.write(cpu, vaddr, paddr, value)
                reference[paddr] = value
            else:
                assert cluster.read(cpu, vaddr, paddr) \
                    == reference.get(paddr, 0)

    @given(aligned_ops)
    @settings(max_examples=150)
    def test_single_dirty_copy_per_equivalent_line(self, ops):
        # The hardware invariant Section 3.3 relies on: the physical tags
        # within the distributed set are unique, dirty in at most one.
        cluster, geo = make_cluster(3)
        touched = set()
        for cpu, word, window, value, is_write in ops:
            paddr = word * 4
            vaddr = paddr + window * geo.way_span
            if is_write:
                cluster.write(cpu, vaddr, paddr, value)
            else:
                cluster.read(cpu, vaddr, paddr)
            set_idx = geo.set_index(vaddr)
            tag = paddr // geo.line_size
            touched.add((set_idx, tag))
            for s, t in touched:
                assert cluster.dirty_copies(s, t) <= 1

    @given(aligned_ops)
    @settings(max_examples=60)
    def test_cluster_flush_syncs_memory(self, ops):
        cluster, geo = make_cluster(3)
        reference = {}
        for cpu, word, window, value, is_write in ops:
            paddr = word * 4
            vaddr = paddr + window * geo.way_span
            if is_write:
                cluster.write(cpu, vaddr, paddr, value)
                reference[paddr] = value
            else:
                cluster.read(cpu, vaddr, paddr)
        cluster.flush_page_frame(0, 0, None)
        for paddr, value in reference.items():
            assert cluster.memory.read_word(paddr) == value


# --- 1-CPU degeneracy -------------------------------------------------------
#
# A cluster of one must be the uniprocessor: same data, same cycle count,
# same counters.  Anything the coherence layer adds on N=1 is overhead the
# paper's baseline never paid.

mixed_ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "read_run", "write_run",
                               "flush", "purge"]),
              st.integers(0, 100),      # word within the first page
              st.integers(0, 2),        # aligned window
              st.integers(0, 2**30)),   # value / run length seed
    min_size=1, max_size=50)


def drive(target, ops, geo, cpu_prefix):
    """Apply one op list; ``cpu_prefix`` is () for a bare Cache and
    ``(0,)`` for a cluster."""
    observed = []
    for op, word, window, value in ops:
        paddr = word * 4
        vaddr = paddr + window * geo.way_span
        if op == "read":
            observed.append(target.read(*cpu_prefix, vaddr, paddr))
        elif op == "write":
            target.write(*cpu_prefix, vaddr, paddr, value)
        elif op == "read_run":
            observed.extend(
                int(v) for v in
                target.read_run(*cpu_prefix, vaddr, paddr, 1 + value % 8))
        elif op == "write_run":
            target.write_run(*cpu_prefix, vaddr, paddr,
                             [value, value ^ 1, value ^ 2])
        elif op == "flush":
            target.flush_page_frame(0, 0, None)
        else:
            target.purge_page_frame(0, 0, None)
    return observed


class TestUniprocessorDegeneracy:
    @given(mixed_ops)
    @settings(max_examples=100, deadline=None)
    def test_one_cpu_cluster_is_bit_identical_to_a_bare_cache(self, ops):
        geo = CacheGeometry(size=8 * 1024)
        flat_mem = PhysicalMemory(8, PAGE)
        flat_clock, flat_counters = Clock(), Counters()
        flat = Cache(geo, flat_mem, CostModel(), flat_clock, flat_counters)

        clu_mem = PhysicalMemory(8, PAGE)
        clu_clock, clu_counters = Clock(), Counters()
        cluster = CoherentCluster(1, geo, clu_mem, CostModel(), clu_clock,
                                  clu_counters)

        assert drive(flat, ops, geo, ()) == drive(cluster, ops, geo, (0,))
        # Same data everywhere -- cached state included, so flush both
        # and compare raw memory.
        flat.flush_page_frame(0, 0, None)
        cluster.flush_page_frame(0, 0, None)
        for word in range(128):
            assert flat_mem.read_word(word * 4) \
                == clu_mem.read_word(word * 4)
        # Same simulated time, same aggregate counters; the coherence
        # counters must not have moved (there is no peer to snoop).
        assert flat_clock.cycles == clu_clock.cycles
        assert flat_counters.snapshot() == clu_counters.snapshot()
        assert clu_counters.coherence_invalidations == 0
        assert clu_counters.coherence_writebacks == 0
