"""Property-based tests for the coherent-cluster extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster
from repro.hw.stats import Clock, Counters

PAGE = 4096


def make_cluster(n_cpus):
    geo = CacheGeometry(size=8 * 1024)
    mem = PhysicalMemory(8, PAGE)
    return CoherentCluster(n_cpus, geo, mem, CostModel(), Clock(),
                           Counters()), geo


aligned_ops = st.lists(
    st.tuples(st.integers(0, 2),        # cpu
              st.integers(0, 127),      # word within the first page
              st.integers(0, 2),        # which aligned window
              st.integers(0, 2**30),    # value
              st.booleans()),           # write?
    min_size=1, max_size=60)


class TestCoherentClusterProperties:
    @given(aligned_ops)
    @settings(max_examples=150)
    def test_aligned_sharing_matches_flat_reference(self, ops):
        cluster, geo = make_cluster(3)
        reference = {}
        for cpu, word, window, value, is_write in ops:
            paddr = word * 4
            vaddr = paddr + window * geo.way_span
            if is_write:
                cluster.write(cpu, vaddr, paddr, value)
                reference[paddr] = value
            else:
                assert cluster.read(cpu, vaddr, paddr) \
                    == reference.get(paddr, 0)

    @given(aligned_ops)
    @settings(max_examples=150)
    def test_single_dirty_copy_per_equivalent_line(self, ops):
        # The hardware invariant Section 3.3 relies on: the physical tags
        # within the distributed set are unique, dirty in at most one.
        cluster, geo = make_cluster(3)
        touched = set()
        for cpu, word, window, value, is_write in ops:
            paddr = word * 4
            vaddr = paddr + window * geo.way_span
            if is_write:
                cluster.write(cpu, vaddr, paddr, value)
            else:
                cluster.read(cpu, vaddr, paddr)
            set_idx = geo.set_index(vaddr)
            tag = paddr // geo.line_size
            touched.add((set_idx, tag))
            for s, t in touched:
                assert cluster.dirty_copies(s, t) <= 1

    @given(aligned_ops)
    @settings(max_examples=60)
    def test_cluster_flush_syncs_memory(self, ops):
        cluster, geo = make_cluster(3)
        reference = {}
        for cpu, word, window, value, is_write in ops:
            paddr = word * 4
            vaddr = paddr + window * geo.way_span
            if is_write:
                cluster.write(cpu, vaddr, paddr, value)
                reference[paddr] = value
            else:
                cluster.read(cpu, vaddr, paddr)
        cluster.flush_page_frame(0, 0, None)
        for paddr, value in reference.items():
            assert cluster.memory.read_word(paddr) == value
