"""Property-based tests of the consistency model and its refinements."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache_control import CacheControl
from repro.core.model import ConsistencyModel
from repro.core.page_state import PhysPageState
from repro.core.states import Action, LineState, MemoryOp
from repro.core.variants import WriteThroughModel

NCP = 4

operations = st.lists(
    st.tuples(
        st.sampled_from([MemoryOp.CPU_READ, MemoryOp.CPU_WRITE,
                         MemoryOp.DMA_READ, MemoryOp.DMA_WRITE]),
        st.integers(min_value=0, max_value=NCP - 1)),
    min_size=1, max_size=40)


class TestModelInvariants:
    @given(operations)
    @settings(max_examples=200)
    def test_at_most_one_dirty_cache_page(self, ops):
        model = ConsistencyModel(NCP)
        for op, target in ops:
            model.apply(op, target if not op.is_dma else None)
            model.validate()

    @given(operations)
    @settings(max_examples=200)
    def test_flush_only_demanded_for_dirty_pages(self, ops):
        model = ConsistencyModel(NCP)
        for op, target in ops:
            before = list(model.states)
            actions = model.apply(op, target if not op.is_dma else None)
            for action in actions:
                if action.action is Action.FLUSH:
                    assert before[action.cache_page] is LineState.DIRTY

    @given(operations)
    @settings(max_examples=200)
    def test_cpu_target_never_left_stale(self, ops):
        # After a CPU operation completes, the accessed cache page holds
        # usable data: Present after a read, Dirty after a write.
        model = ConsistencyModel(NCP)
        for op, target in ops:
            model.apply(op, target if not op.is_dma else None)
            if op is MemoryOp.CPU_READ:
                assert model.state(target) is LineState.PRESENT or \
                    model.state(target) is LineState.DIRTY
            elif op is MemoryOp.CPU_WRITE:
                assert model.state(target) is LineState.DIRTY

    @given(operations)
    @settings(max_examples=200)
    def test_no_dirty_survives_dma_write(self, ops):
        model = ConsistencyModel(NCP)
        for op, target in ops:
            model.apply(op, target if not op.is_dma else None)
        model.apply(MemoryOp.DMA_WRITE)
        assert model.dirty_cache_pages() == []

    @given(operations)
    @settings(max_examples=200)
    def test_write_through_never_dirty_never_flushes(self, ops):
        model = WriteThroughModel(NCP)
        for op, target in ops:
            actions = model.apply(op, target if not op.is_dma else None)
            assert LineState.DIRTY not in model.states
            assert all(a.action is not Action.FLUSH for a in actions)


class _Collector:
    def __init__(self):
        self.performed: list[tuple[Action, int]] = []

    def flush(self, cache_page, ppage, reason):
        self.performed.append((Action.FLUSH, cache_page))

    def purge(self, cache_page, ppage, reason):
        self.performed.append((Action.PURGE, cache_page))

    def protect(self, mapping, prot):
        pass


class TestAlgorithmRefinesModel:
    """The page-level Figure 1 algorithm vs the line-level Table 2 model.

    The algorithm may be pessimistic (extra purges on pages the model
    knows are empty) but must perform every action the model requires —
    with plain semantics (need_data=True, will_overwrite=False).
    """

    @given(operations)
    @settings(max_examples=200)
    def test_engine_performs_a_superset_of_required_actions(self, ops):
        model = ConsistencyModel(NCP)
        state = PhysPageState(0, NCP)
        collector = _Collector()
        engine = CacheControl(collector.flush, collector.purge,
                              collector.protect)
        for op, target in ops:
            required = model.apply(op, target if not op.is_dma else None)
            collector.performed.clear()
            # Mirror the pmap's invocation: a DMA-write never needs the old
            # dirty data (memory is about to be overwritten).
            engine(state, op, target if op.is_cpu else None,
                   need_data=(op is not MemoryOp.DMA_WRITE))
            performed = set(collector.performed)
            for action in required:
                satisfied = (action.action, action.cache_page) in performed
                if action.action is Action.PURGE:
                    # A flush removes the line too (purge + write-back),
                    # so it satisfies a purge requirement.
                    satisfied = satisfied or (
                        (Action.FLUSH, action.cache_page) in performed)
                assert satisfied, (
                    f"model requires {action} for {op} @ {target}, engine "
                    f"performed only {performed}")

    @given(operations)
    @settings(max_examples=200)
    def test_engine_state_invariants(self, ops):
        state = PhysPageState(0, NCP)
        collector = _Collector()
        engine = CacheControl(collector.flush, collector.purge,
                              collector.protect)
        for op, target in ops:
            engine(state, op, target if op.is_cpu else None)
            state.validate()

    @given(operations)
    @settings(max_examples=200)
    def test_engine_dirty_agrees_with_model_dirty(self, ops):
        # Dirty tracking is exact (not pessimistic): the engine's
        # cache_dirty page equals the model's unique dirty page.
        model = ConsistencyModel(NCP)
        state = PhysPageState(0, NCP)
        collector = _Collector()
        engine = CacheControl(collector.flush, collector.purge,
                              collector.protect)
        for op, target in ops:
            model.apply(op, target if not op.is_dma else None)
            engine(state, op, target if op.is_cpu else None)
            model_dirty = model.dirty_cache_pages()
            if state.cache_dirty:
                assert model_dirty == [state.find_mapped_cache_page()]
            else:
                assert model_dirty == []
