"""Cross-architecture semantic equivalence.

Cache architecture changes *performance*, never *results*: the same
deterministic workload run on the virtually indexed write-back machine,
on a physically indexed machine, and on a write-through machine must
leave byte-identical file contents on the disk — and all three must pass
the staleness oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import CacheGeometry, MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.vm.policy import CONFIG_F
from repro.workloads.random_ops import AliasStressor


def machines():
    return {
        "vi-wb": MachineConfig(phys_pages=192),
        "pi-wb": MachineConfig(
            dcache=CacheGeometry(size=256 * 1024, physically_indexed=True),
            icache=CacheGeometry(size=128 * 1024, physically_indexed=True),
            phys_pages=192),
        "vi-wt": MachineConfig(
            dcache=CacheGeometry(size=256 * 1024, write_through=True),
            phys_pages=192),
    }


def run_file_workload(config, seed):
    """A deterministic little file workload; returns the platter state."""
    import random
    rng = random.Random(seed)
    kernel = Kernel(policy=CONFIG_F, config=config)
    proc = UserProcess(kernel, "p")
    proc.create("/out")
    fd = proc.open("/out")
    n_pages = 3
    for i in range(8):
        page = rng.randrange(n_pages)
        values = np.full(1024, rng.randrange(1 << 30), dtype=np.uint64)
        proc.write_file_page(fd, page, values)
    proc.close(fd)
    kernel.shutdown()
    meta = kernel.fs.lookup("/out")
    platter = {p: kernel.disk.block(meta.file_id, p).tolist()
               for p in range(meta.size_pages)
               if kernel.disk.has_block(meta.file_id, p)}
    return platter, kernel


class TestArchitectureEquivalence:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_identical_platters_across_architectures(self, seed):
        results = {}
        for name, config in machines().items():
            platter, kernel = run_file_workload(config, seed)
            results[name] = platter
            assert kernel.machine.oracle.clean, name
        assert results["vi-wb"] == results["pi-wb"] == results["vi-wt"]

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_stressor_clean_on_every_architecture(self, seed):
        for name, config in machines().items():
            kernel = Kernel(policy=CONFIG_F, config=config)
            AliasStressor(kernel, n_tasks=2, n_pages=3, seed=seed).run(120)
            assert kernel.machine.oracle.clean, name

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_stressor_identical_stats_across_architectures(self, seed):
        # The stressor's *logical* behaviour (what it did) is architecture
        # independent; only the consistency machinery's work differs.
        stats = []
        for name, config in machines().items():
            kernel = Kernel(policy=CONFIG_F, config=config)
            stats.append(AliasStressor(kernel, n_tasks=2, n_pages=3,
                                       seed=seed).run(120))
        assert stats[0] == stats[1] == stats[2]
