"""Fault injection: each consistency action is *necessary*, not merely
sufficient.

Every test arms exactly one injection point of the deterministic fault
injector (dropping the stanza 2 flush, the stanza 3 purge, the DMA
preparations) — or, for actions without an injection point, sabotages the
engine callback directly — and shows a short witness workload on which
the staleness oracle, in recording mode, observes a stale transfer.
Together with the no-stale-data property tests this brackets the
algorithm: with all actions it is correct, and no action is dead weight.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.hw.machine import Machine
from repro.hw.params import small_machine
from repro.prot import AccessKind, Prot
from repro.vm.pmap import Pmap
from repro.vm.policy import CONFIG_F

PAGE = 4096


class Rig:
    def __init__(self, *drop_points: str):
        self.machine = Machine(small_machine())
        self.machine.oracle.record_only = True
        self.pmap = Pmap(self.machine, CONFIG_F)
        self.machine.fault_handler = self._handle
        self.injector = None
        if drop_points:
            plan = FaultPlan(seed=0, rules=tuple(FaultRule(p)
                                                 for p in drop_points))
            self.injector = FaultInjector(plan, self.machine.clock)
            self.injector.attach(pmap=self.pmap)

    def _handle(self, info):
        self.pmap.consistency_fault(info.asid, info.vaddr // PAGE,
                                    info.access)

    def enter(self, asid, vpage, ppage, access=AccessKind.READ):
        self.pmap.enter(asid, vpage, ppage, Prot.READ_WRITE, access)

    @property
    def violations(self):
        return self.machine.oracle.violations


def _noop(*args, **kwargs):
    return None


class TestEachActionIsNecessary:
    def test_baseline_witnesses_are_clean_without_sabotage(self):
        rig = Rig()
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(1, 11, 3, AccessKind.READ)
        rig.machine.write(1, 10 * PAGE, 42)
        assert rig.machine.read(1, 11 * PAGE) == 42
        rig.pmap.prepare_dma_read(3)
        rig.machine.dma.dma_read(3)
        assert rig.violations == []

    def test_skipping_the_stanza2_flush_serves_stale_memory(self):
        rig = Rig("pmap.flush.drop")            # sabotage: flushes dropped
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(1, 11, 3, AccessKind.READ)
        rig.machine.write(1, 10 * PAGE, 42)     # dirty only in the cache
        rig.machine.read(1, 11 * PAGE)          # fill reads stale memory
        assert rig.violations, "dropping the flush must be observable"
        assert rig.violations[0].kind == "cpu-read"
        assert rig.injector.fired("pmap.flush.drop")
        assert any(r.consequential
                   for r in rig.injector.records("pmap.flush.drop"))

    def test_duplicating_the_flush_is_harmless(self):
        # Flushing twice is wasted work, never staleness: the second pass
        # finds clean lines.  The injector's audit still shows the fires.
        rig = Rig("pmap.flush.duplicate")
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(1, 11, 3, AccessKind.READ)
        rig.machine.write(1, 10 * PAGE, 42)
        assert rig.machine.read(1, 11 * PAGE) == 42
        assert rig.violations == []
        assert rig.injector.fired("pmap.flush.duplicate")

    def test_skipping_the_stanza3_purge_serves_stale_cache_lines(self):
        rig = Rig("pmap.purge.drop")            # sabotage: purges dropped
        rig.enter(1, 10, 3, AccessKind.READ)
        rig.enter(1, 11, 3, AccessKind.READ)
        rig.machine.read(1, 10 * PAGE)          # resident at cache page 2
        rig.machine.write(1, 11 * PAGE, 7)      # stales cache page 2
        rig.machine.read(1, 10 * PAGE)          # stale line still resident
        assert rig.violations
        assert rig.violations[0].kind == "cpu-read"
        assert any(r.consequential
                   for r in rig.injector.records("pmap.purge.drop"))

    def test_duplicating_the_purge_is_harmless(self):
        rig = Rig("pmap.purge.duplicate")
        rig.enter(1, 10, 3, AccessKind.READ)
        rig.enter(1, 11, 3, AccessKind.READ)
        rig.machine.read(1, 10 * PAGE)
        rig.machine.write(1, 11 * PAGE, 7)
        assert rig.machine.read(1, 10 * PAGE) == 7
        assert rig.violations == []
        assert rig.injector.fired("pmap.purge.duplicate")

    def test_skipping_dma_read_preparation_gives_device_stale_data(self):
        rig = Rig("pmap.dma_read_prep.skip")
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 42)
        rig.pmap.prepare_dma_read(3)            # injected away
        rig.machine.dma.dma_read(3)
        assert rig.violations
        assert rig.violations[0].kind == "dma-read"
        [record] = rig.injector.records("pmap.dma_read_prep.skip")
        assert record.consequential, "memory truly lagged program order"

    def test_skipping_dma_write_preparation_shadows_device_data(self):
        rig = Rig("pmap.dma_write_prep.skip")
        rig.enter(1, 10, 3, AccessKind.READ)
        rig.machine.read(1, 10 * PAGE)          # resident, clean
        fresh = np.full(1024, 9, dtype=np.uint64)
        rig.pmap.prepare_dma_write(3)           # injected away
        rig.machine.dma.dma_write(3, fresh)
        rig.machine.read(1, 10 * PAGE)          # old cached value shadows
        assert rig.violations
        assert rig.violations[0].kind == "cpu-read"
        [record] = rig.injector.records("pmap.dma_write_prep.skip")
        assert record.consequential

    def test_skipping_dma_write_purge_overwrites_device_data(self):
        # The other DMA-write hazard: a dirty line written back *after*
        # the device's transfer destroys the device data in memory.
        rig = Rig("pmap.flush.drop", "pmap.purge.drop")
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 1)      # dirty line for frame 3
        rig.pmap.prepare_dma_write(3)           # purge injected away
        rig.machine.dma.dma_write(3, np.full(1024, 8, dtype=np.uint64))
        # Force the (zombie) dirty line out by cache pressure: its
        # write-back lands on top of the device data.
        span = rig.machine.dcache.geo.way_span
        rig.enter(1, 10 + span // PAGE, 4, AccessKind.WRITE)
        rig.machine.write(1, (10 + span // PAGE) * PAGE, 2)
        rig.pmap.prepare_dma_read(3)
        rig.machine.dma.dma_read(3)
        assert rig.violations

    def test_never_downgrading_protections_hides_transitions(self):
        # Sabotage stanza 6 so protections are always READ_WRITE: accesses
        # stop faulting, so the algorithm never runs and staleness leaks.
        # (No injection point: protection updates are not a single
        # droppable action but a policy decision; sabotage the callback.)
        rig = Rig()
        original = rig.pmap._set_protection
        rig.pmap.engine._protect = (
            lambda mapping, prot: original(mapping, Prot.READ_WRITE))
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.enter(1, 11, 3, AccessKind.READ)
        rig.machine.write(1, 10 * PAGE, 1)      # dirty in cache page only
        rig.machine.read(1, 11 * PAGE)          # no fault: fills stale memory
        assert rig.violations
        assert rig.violations[0].kind == "cpu-read"

    def test_skipping_modified_bit_sync_loses_redirty(self):
        # (No injection point either: Section 4.1's modified-bit sync is a
        # hardware/pmap contract, not a runtime consistency action.)
        rig = Rig()
        rig.pmap.sync_modified = _noop          # sabotage: Section 4.1 off
        rig.enter(1, 10, 3, AccessKind.WRITE)
        rig.machine.write(1, 10 * PAGE, 1)
        rig.pmap.prepare_dma_read(3)
        rig.machine.dma.dma_read(3)
        rig.machine.write(1, 10 * PAGE, 2)      # mapping still writable
        rig.pmap.prepare_dma_read(3)            # thinks the page is clean
        rig.machine.dma.dma_read(3)
        assert rig.violations
        assert rig.violations[0].kind == "dma-read"

    def test_injection_is_scoped_by_pause(self):
        # The same plan does nothing while paused: the witness stays clean.
        rig = Rig("pmap.flush.drop")
        with rig.injector.paused():
            rig.enter(1, 10, 3, AccessKind.WRITE)
            rig.enter(1, 11, 3, AccessKind.READ)
            rig.machine.write(1, 10 * PAGE, 42)
            assert rig.machine.read(1, 11 * PAGE) == 42
        assert rig.violations == []
        assert rig.injector.audit == []
