"""Tests for the staleness oracle."""

import numpy as np
import pytest

from repro.core.oracle import ShadowMemory, Violation
from repro.errors import StaleDataError

PAGE = 4096
WPP = PAGE // 4


def make_oracle(record_only=False):
    return ShadowMemory(num_pages=4, page_size=PAGE, record_only=record_only)


class TestWordTracking:
    def test_fresh_read_of_zeroed_memory(self):
        oracle = make_oracle()
        oracle.check_cpu_read(0, 0)   # everything starts zero

    def test_write_then_correct_read(self):
        oracle = make_oracle()
        oracle.note_cpu_write(64, 42)
        oracle.check_cpu_read(64, 42)

    def test_stale_read_raises(self):
        oracle = make_oracle()
        oracle.note_cpu_write(64, 42)
        with pytest.raises(StaleDataError) as excinfo:
            oracle.check_cpu_read(64, 41)
        assert excinfo.value.paddr == 64
        assert excinfo.value.expected == 42
        assert excinfo.value.actual == 41

    def test_latest_write_wins(self):
        oracle = make_oracle()
        oracle.note_cpu_write(8, 1)
        oracle.note_cpu_write(8, 2)
        oracle.check_cpu_read(8, 2)
        with pytest.raises(StaleDataError):
            oracle.check_cpu_read(8, 1)


class TestPageTracking:
    def test_page_write_then_page_read(self):
        oracle = make_oracle()
        values = np.arange(WPP, dtype=np.uint64)
        oracle.note_page_write(PAGE, values)
        oracle.check_page_read(PAGE, values)

    def test_page_read_detects_single_stale_word(self):
        oracle = make_oracle()
        values = np.arange(WPP, dtype=np.uint64)
        oracle.note_page_write(PAGE, values)
        bad = values.copy()
        bad[17] = 9999
        with pytest.raises(StaleDataError) as excinfo:
            oracle.check_page_read(PAGE, bad)
        assert excinfo.value.paddr == PAGE + 17 * 4

    def test_page_write_updates_word_view(self):
        oracle = make_oracle()
        values = np.full(WPP, 7, dtype=np.uint64)
        oracle.note_page_write(0, values)
        oracle.check_cpu_read(12, 7)
        assert oracle.expected_word(12) == 7


class TestDmaTracking:
    def test_dma_write_then_dma_read(self):
        oracle = make_oracle()
        values = np.arange(WPP, dtype=np.uint64) + 5
        oracle.note_dma_write(2, values)
        oracle.check_dma_read(2, values)

    def test_dma_read_of_stale_memory_raises(self):
        # A CPU write that never reached memory: the device must not see
        # the old value (Section 2.4).
        oracle = make_oracle()
        oracle.note_cpu_write(2 * PAGE, 123)
        stale_page = np.zeros(WPP, dtype=np.uint64)
        with pytest.raises(StaleDataError):
            oracle.check_dma_read(2, stale_page)


class TestRecordOnlyMode:
    def test_violations_recorded_not_raised(self):
        oracle = make_oracle(record_only=True)
        oracle.note_cpu_write(0, 5)
        oracle.check_cpu_read(0, 4)
        oracle.check_cpu_read(0, 3)
        assert len(oracle.violations) == 2
        assert not oracle.clean

    def test_violation_description(self):
        oracle = make_oracle(record_only=True)
        oracle.note_cpu_write(0, 5)
        oracle.check_cpu_read(0, 4)
        violation = oracle.violations[0]
        assert isinstance(violation, Violation)
        assert violation.kind == "cpu-read"
        assert "expected" in str(violation)

    def test_clean_run_counts_checks(self):
        oracle = make_oracle(record_only=True)
        for i in range(10):
            oracle.check_cpu_read(4 * i, 0)
        assert oracle.checks == 10
        assert oracle.clean

    def test_record_only_toggles_mid_run(self):
        # Each check consults the current flag, so a harness can record
        # during a chaos window and fail fast outside it.
        oracle = make_oracle(record_only=True)
        oracle.note_cpu_write(0, 5)
        oracle.check_cpu_read(0, 4)             # recorded, not raised
        oracle.record_only = False
        with pytest.raises(StaleDataError):
            oracle.check_cpu_read(0, 4)         # same staleness now raises
        oracle.record_only = True
        oracle.check_cpu_read(0, 4)             # and records again
        assert len(oracle.violations) == 3      # every check was recorded

    def test_raised_violations_are_still_recorded(self):
        oracle = make_oracle(record_only=False)
        oracle.note_cpu_write(0, 5)
        with pytest.raises(StaleDataError):
            oracle.check_cpu_read(0, 4)
        assert len(oracle.violations) == 1      # the audit trail survives


class TestRunTracking:
    def test_partial_run_checks_only_its_words(self):
        # A run shorter than a page: staleness just past its end must not
        # trigger (the run's window is [paddr, paddr + len*WORD_SIZE)).
        oracle = make_oracle()
        oracle.note_cpu_write(32, 99)           # stale word at offset 32
        oracle.check_run_read(0, np.zeros(8, dtype=np.uint64))  # words 0..7
        with pytest.raises(StaleDataError) as excinfo:
            oracle.check_run_read(0, np.zeros(9, dtype=np.uint64))
        assert excinfo.value.paddr == 32

    def test_unaligned_partial_run(self):
        oracle = make_oracle()
        oracle.note_run_write(40, np.arange(4, dtype=np.uint64))
        oracle.check_run_read(40, np.arange(4, dtype=np.uint64))
        oracle.check_run_read(44, np.arange(1, 4, dtype=np.uint64))
        with pytest.raises(StaleDataError) as excinfo:
            oracle.check_run_read(44, np.arange(3, dtype=np.uint64))
        assert excinfo.value.paddr == 44
        assert excinfo.value.expected == 1

    def test_checks_count_calls_not_words(self):
        # Documented accounting: one page/run check = one tick of
        # ``checks`` regardless of how many words it compared.
        oracle = make_oracle(record_only=True)
        oracle.check_run_read(0, np.zeros(100, dtype=np.uint64))
        oracle.check_page_read(0, np.zeros(WPP, dtype=np.uint64))
        oracle.check_dma_read(0, np.zeros(WPP, dtype=np.uint64))
        oracle.check_cpu_read(0, 0)
        assert oracle.checks == 4

    def test_run_read_reports_first_stale_word_only(self):
        oracle = make_oracle(record_only=True)
        oracle.note_run_write(0, np.arange(4, dtype=np.uint64) + 1)
        oracle.check_run_read(0, np.zeros(4, dtype=np.uint64))
        assert len(oracle.violations) == 1      # one violation per check
        assert oracle.violations[0].paddr == 0


class TestExpectedPage:
    def test_expected_page_reflects_program_order(self):
        oracle = make_oracle()
        values = np.arange(WPP, dtype=np.uint64) + 3
        oracle.note_dma_write(1, values)
        oracle.note_cpu_write(PAGE, 77)
        expected = oracle.expected_page(PAGE)
        assert expected[0] == 77
        assert np.array_equal(expected[1:], values[1:])

    def test_expected_page_is_a_copy(self):
        oracle = make_oracle()
        page = oracle.expected_page(0)
        page[:] = 123
        assert oracle.expected_word(0) == 0
