"""Tests for the bit vector backing the page-state encoding."""

import pytest

from repro.core.bitvector import BitVector
from repro.errors import AddressError


class TestBasics:
    def test_starts_clear(self):
        bv = BitVector(8)
        assert not bv.any()
        assert bv.count() == 0

    def test_set_and_get(self):
        bv = BitVector(8)
        bv[3] = True
        assert bv[3]
        assert not bv[2]
        assert bv.count() == 1

    def test_clear_single_bit(self):
        bv = BitVector(8)
        bv[3] = True
        bv[3] = False
        assert not bv[3]

    def test_out_of_range_read(self):
        with pytest.raises(AddressError):
            BitVector(8)[8]

    def test_out_of_range_write(self):
        with pytest.raises(AddressError):
            BitVector(8)[-1] = True

    def test_zero_width_rejected(self):
        with pytest.raises(AddressError):
            BitVector(0)


class TestBulkOps:
    def test_or_with(self):
        a, b = BitVector(8), BitVector(8)
        a[1] = True
        b[2] = True
        a.or_with(b)
        assert a[1] and a[2]
        assert b[1] is False  # b unchanged

    def test_or_with_width_mismatch(self):
        with pytest.raises(AddressError):
            BitVector(8).or_with(BitVector(4))

    def test_clear_all(self):
        bv = BitVector(8)
        for i in (0, 3, 7):
            bv[i] = True
        bv.clear_all()
        assert not bv.any()

    def test_indices_ascending(self):
        bv = BitVector(16)
        for i in (9, 2, 14):
            bv[i] = True
        assert bv.indices() == [2, 9, 14]

    def test_first(self):
        bv = BitVector(16)
        assert bv.first() is None
        bv[5] = True
        bv[11] = True
        assert bv.first() == 5

    def test_copy_is_independent(self):
        bv = BitVector(8)
        bv[1] = True
        other = bv.copy()
        other[2] = True
        assert not bv[2]
        assert other[1]

    def test_equality(self):
        a, b = BitVector(8), BitVector(8)
        a[4] = True
        assert a != b
        b[4] = True
        assert a == b
        assert a != BitVector(16)

    def test_high_bit_masked_on_construction(self):
        bv = BitVector(4, bits=0xFF)
        assert bv.count() == 4
        assert bv.indices() == [0, 1, 2, 3]
