"""Stanza-by-stanza tests of the Figure 1 CacheControl algorithm."""

import pytest

from repro.core.cache_control import CacheControl, PerformedOp
from repro.core.page_state import PhysPageState
from repro.core.states import Action, LineState, MemoryOp
from repro.errors import ReproError
from repro.hw.stats import Reason
from repro.prot import Prot

NCP = 8


class Recorder:
    """Callback recorder standing in for the hardware and page tables."""

    def __init__(self):
        self.flushes: list[int] = []
        self.purges: list[int] = []
        self.protections: dict[tuple[int, int], Prot] = {}

    def flush(self, cache_page, ppage, reason):
        self.flushes.append(cache_page)

    def purge(self, cache_page, ppage, reason):
        self.purges.append(cache_page)

    def protect(self, mapping, prot):
        if prot is not None:
            self.protections[mapping.key] = prot


@pytest.fixture
def rig():
    recorder = Recorder()
    engine = CacheControl(recorder.flush, recorder.purge, recorder.protect)
    state = PhysPageState(ppage=7, num_cache_pages=NCP)
    return engine, state, recorder


class TestStanza2CleanDirtyPage:
    def test_unaligned_read_flushes_the_dirty_page(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 0)
        engine(state, MemoryOp.CPU_READ, 1)
        assert rec.flushes == [0]
        assert not state.cache_dirty

    def test_aligned_read_skips_the_flush(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 0)
        engine(state, MemoryOp.CPU_READ, 0)
        assert rec.flushes == []
        # an aligned read of a dirty page leaves it dirty
        assert state.cache_dirty

    def test_aligned_read_through_different_but_aligned_vpage(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 2)
        engine(state, MemoryOp.CPU_READ, 2 + NCP)   # aligns with vpage 2
        assert rec.flushes == []
        assert state.cache_dirty

    def test_dma_read_always_cleans_dirty_data(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 3)
        engine(state, MemoryOp.DMA_READ)
        assert rec.flushes == [3]
        assert not state.cache_dirty

    def test_need_data_false_purges_instead_of_flushing(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 0)
        engine(state, MemoryOp.CPU_WRITE, 1, need_data=False)
        assert rec.flushes == []
        assert 0 in rec.purges

    def test_dirty_page_stays_mapped_after_flush(self, rig):
        # Figure 1 does not clear mapped[w]; the post-flush Present state
        # is sound pessimism (memory now matches).
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 0)
        engine(state, MemoryOp.DMA_READ)
        assert state.decode(0) is LineState.PRESENT


class TestStanza3StaleTarget:
    def _make_stale(self, engine, state):
        engine(state, MemoryOp.CPU_READ, 1)      # present at 1
        engine(state, MemoryOp.CPU_WRITE, 0)     # 1 becomes stale

    def test_read_of_stale_target_purges_it(self, rig):
        engine, state, rec = rig
        self._make_stale(engine, state)
        assert state.decode(1) is LineState.STALE
        engine(state, MemoryOp.CPU_READ, 1)
        assert 1 in rec.purges
        assert state.decode(1) is LineState.PRESENT

    def test_will_overwrite_skips_the_purge(self, rig):
        engine, state, rec = rig
        self._make_stale(engine, state)
        rec.purges.clear()
        engine(state, MemoryOp.CPU_WRITE, 1, will_overwrite=True)
        assert rec.purges == []
        assert not state.stale[1]

    def test_stale_bit_cleared_even_when_purge_skipped(self, rig):
        engine, state, rec = rig
        self._make_stale(engine, state)
        engine(state, MemoryOp.CPU_READ, 1, will_overwrite=True)
        assert not state.stale[1]


class TestStanza4Writes:
    def test_cpu_write_stales_all_other_mapped_pages(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_READ, 1)
        engine(state, MemoryOp.CPU_READ, 2)
        engine(state, MemoryOp.CPU_WRITE, 3)
        assert state.decode(1) is LineState.STALE
        assert state.decode(2) is LineState.STALE
        assert state.decode(3) is LineState.DIRTY

    def test_cpu_write_target_not_stale_and_dirty(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_READ, 3)
        engine(state, MemoryOp.CPU_WRITE, 3)
        assert state.decode(3) is LineState.DIRTY
        assert state.cache_dirty

    def test_dma_write_unmaps_everything(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_READ, 1)
        engine(state, MemoryOp.CPU_READ, 2)
        engine(state, MemoryOp.DMA_WRITE, need_data=False)
        assert not state.mapped.any()
        assert state.decode(1) is LineState.STALE
        assert state.decode(2) is LineState.STALE

    def test_dma_write_purges_dirty_page(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 4)
        engine(state, MemoryOp.DMA_WRITE, need_data=False)
        assert 4 in rec.purges
        assert rec.flushes == []
        assert not state.cache_dirty

    def test_invariant_one_dirty_mapped_page(self, rig):
        engine, state, rec = rig
        for vpage in (0, 1, 2, 1, 0):
            engine(state, MemoryOp.CPU_WRITE, vpage)
            state.validate()


class TestStanza6Protections:
    def test_stale_mappings_lose_access(self, rig):
        engine, state, rec = rig
        state.add_mapping(1, 1)
        state.add_mapping(2, 2)
        engine(state, MemoryOp.CPU_READ, 1)
        engine(state, MemoryOp.CPU_WRITE, 2)
        assert rec.protections[(1, 1)] is Prot.NONE      # stale now
        assert rec.protections[(2, 2)] is Prot.READ_WRITE

    def test_read_leaves_all_mapped_pages_read_only(self, rig):
        engine, state, rec = rig
        state.add_mapping(1, 3)
        state.add_mapping(2, 3 + NCP)   # aligned alias in another space
        engine(state, MemoryOp.CPU_READ, 3)
        assert rec.protections[(1, 3)] is Prot.READ
        assert rec.protections[(2, 3 + NCP)] is Prot.READ

    def test_aligned_alias_of_writer_gets_write_access(self, rig):
        engine, state, rec = rig
        state.add_mapping(1, 2)
        state.add_mapping(2, 2 + NCP)
        engine(state, MemoryOp.CPU_WRITE, 2)
        # Aligned aliases share the cache line: no consistency hazard.
        assert rec.protections[(2, 2 + NCP)] is Prot.READ_WRITE

    def test_unmapped_cache_pages_get_no_access(self, rig):
        engine, state, rec = rig
        state.add_mapping(1, 5)
        engine(state, MemoryOp.CPU_READ, 0)   # 5 is not mapped
        assert rec.protections[(1, 5)] is Prot.NONE

    def test_dma_leaves_mapped_nonstale_protection_alone(self, rig):
        engine, state, rec = rig
        state.add_mapping(1, 1)
        engine(state, MemoryOp.CPU_READ, 1)
        rec.protections.clear()
        engine(state, MemoryOp.DMA_READ)
        assert (1, 1) not in rec.protections  # left in place

    def test_update_protections_can_be_suppressed(self, rig):
        engine, state, rec = rig
        state.add_mapping(1, 1)
        engine(state, MemoryOp.CPU_READ, 1, update_protections=False)
        assert rec.protections == {}


class TestEagerVariant:
    def test_eager_purges_instead_of_marking_stale(self):
        rec = Recorder()
        engine = CacheControl(rec.flush, rec.purge, rec.protect,
                              eager_purge_stale=True)
        state = PhysPageState(0, NCP)
        engine(state, MemoryOp.CPU_READ, 1)
        engine(state, MemoryOp.CPU_WRITE, 2)
        assert 1 in rec.purges
        assert not state.stale.any()


class TestArgumentValidation:
    def test_rejects_cache_ops(self, rig):
        engine, state, rec = rig
        with pytest.raises(ReproError):
            engine(state, MemoryOp.PURGE, 0)

    def test_cpu_op_requires_target(self, rig):
        engine, state, rec = rig
        with pytest.raises(ReproError):
            engine(state, MemoryOp.CPU_READ)

    def test_returns_performed_operations(self, rig):
        engine, state, rec = rig
        engine(state, MemoryOp.CPU_WRITE, 0)
        performed = engine(state, MemoryOp.CPU_READ, 1)
        assert PerformedOp(Action.FLUSH, 0) in performed
