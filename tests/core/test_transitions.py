"""Tests for the Table 2 transition tables.

These encode the paper's table row by row (with the documented
normalizations), plus the structural facts the Section 3.2 correctness
argument relies on.
"""

import pytest

from repro.core.states import Action, LineState, MemoryOp
from repro.core.transitions import (OTHER_TRANSITIONS, TARGET_TRANSITIONS,
                                    other_transition, render_table2,
                                    target_transition)

E, P, D, S = (LineState.EMPTY, LineState.PRESENT, LineState.DIRTY,
              LineState.STALE)


class TestCompleteness:
    def test_every_op_state_pair_has_a_target_transition(self):
        for op in MemoryOp:
            for state in LineState:
                assert (op, state) in TARGET_TRANSITIONS

    def test_every_op_state_pair_has_an_other_transition(self):
        for op in MemoryOp:
            for state in LineState:
                assert (op, state) in OTHER_TRANSITIONS

    def test_no_extra_entries(self):
        assert len(TARGET_TRANSITIONS) == 24
        assert len(OTHER_TRANSITIONS) == 24


class TestTargetColumn:
    """The paper's second column."""

    def test_cpu_read_of_empty_becomes_present(self):
        assert target_transition(MemoryOp.CPU_READ, E) == (Action.NONE, P)

    def test_cpu_read_of_stale_requires_purge(self):
        assert target_transition(MemoryOp.CPU_READ, S) == (Action.PURGE, P)

    def test_cpu_write_dirties_from_any_nonstale_state(self):
        for state in (E, P, D):
            action, nxt = target_transition(MemoryOp.CPU_WRITE, state)
            assert action is Action.NONE
            assert nxt is D

    def test_cpu_write_to_stale_requires_purge(self):
        # "As with a CPU-read, a CPU-write to a stale line requires purging."
        assert target_transition(MemoryOp.CPU_WRITE, S) == (Action.PURGE, D)

    def test_dma_read_flushes_dirty_data(self):
        action, nxt = target_transition(MemoryOp.DMA_READ, D)
        assert action is Action.FLUSH

    def test_dma_write_purges_rather_than_flushes_dirty_data(self):
        # "a DMA-write under a dirty cache line only requires that the line
        # be purged rather than flushed, since the DMA-write will cause the
        # data in memory to be overwritten."
        action, nxt = target_transition(MemoryOp.DMA_WRITE, D)
        assert action is Action.PURGE

    def test_dma_write_makes_present_lines_stale(self):
        assert target_transition(MemoryOp.DMA_WRITE, P) == (Action.NONE, S)

    @pytest.mark.parametrize("op", [MemoryOp.PURGE, MemoryOp.FLUSH])
    @pytest.mark.parametrize("state", list(LineState))
    def test_purge_and_flush_empty_the_target(self, op, state):
        action, nxt = target_transition(op, state)
        assert nxt is E
        assert action is Action.NONE  # they ARE the consistency actions


class TestOtherColumn:
    """The paper's third column: similarly mapped but unaligned lines."""

    def test_cpu_read_flushes_dirty_unaligned_alias(self):
        # The flushed data must reach memory before the target's fill.
        assert other_transition(MemoryOp.CPU_READ, D) == (Action.FLUSH, E)

    def test_cpu_write_stales_present_unaligned_alias(self):
        assert other_transition(MemoryOp.CPU_WRITE, P) == (Action.NONE, S)

    def test_cpu_write_flushes_dirty_unaligned_alias(self):
        # The write-allocate fill reads memory, which must be current.
        assert other_transition(MemoryOp.CPU_WRITE, D) == (Action.FLUSH, E)

    def test_cpu_ops_leave_empty_and_stale_alone(self):
        for op in (MemoryOp.CPU_READ, MemoryOp.CPU_WRITE):
            assert other_transition(op, E) == (Action.NONE, E)
            assert other_transition(op, S) == (Action.NONE, S)

    @pytest.mark.parametrize("op", [MemoryOp.DMA_READ, MemoryOp.DMA_WRITE])
    @pytest.mark.parametrize("state", list(LineState))
    def test_dma_transitions_identical_for_target_and_others(self, op, state):
        # "DMA does not go through the cache, so all cache lines that
        # contain the physical address ... share the same transitions."
        assert TARGET_TRANSITIONS[(op, state)] == OTHER_TRANSITIONS[(op, state)]

    @pytest.mark.parametrize("op", [MemoryOp.PURGE, MemoryOp.FLUSH])
    @pytest.mark.parametrize("state", list(LineState))
    def test_cache_ops_do_not_touch_other_lines(self, op, state):
        assert other_transition(op, state) == (Action.NONE, state)


class TestStructuralFacts:
    """Facts the correctness argument of Section 3.2 rests on."""

    def test_only_cpu_write_produces_a_dirty_line(self):
        for table in (TARGET_TRANSITIONS, OTHER_TRANSITIONS):
            for (op, state), (action, nxt) in table.items():
                if nxt is D and state is not D:
                    assert op is MemoryOp.CPU_WRITE

    def test_a_line_never_leaves_stale_without_a_purge(self):
        # Stale data must never be transferred; the only way out of S
        # toward a readable state is through a purge (or an explicit
        # purge/flush event, which *is* the removal).
        for table in (TARGET_TRANSITIONS, OTHER_TRANSITIONS):
            for (op, state), (action, nxt) in table.items():
                if state is S and nxt in (P, D):
                    assert action is Action.PURGE

    def test_flush_only_ever_applies_to_dirty_lines(self):
        for table in (TARGET_TRANSITIONS, OTHER_TRANSITIONS):
            for (op, state), (action, nxt) in table.items():
                if action is Action.FLUSH:
                    assert state is D

    def test_dirty_lines_never_silently_discarded(self):
        # Leaving D for a non-D state always involves a flush or a purge
        # (the purge cases are exactly DMA-write, where memory is about to
        # be overwritten, and the explicit Purge event itself).
        for table in (TARGET_TRANSITIONS, OTHER_TRANSITIONS):
            for (op, state), (action, nxt) in table.items():
                if state is D and nxt is not D and action is Action.NONE:
                    assert op in (MemoryOp.PURGE, MemoryOp.FLUSH)


class TestRendering:
    def test_render_contains_all_operations(self):
        text = render_table2()
        for op in MemoryOp:
            assert str(op) in text

    def test_render_shows_required_actions(self):
        text = render_table2()
        assert "-(purge)->" in text
        assert "-(flush)->" in text
