"""Tests for the per-physical-page state encoding (Table 3)."""

import pytest

from repro.core.page_state import PhysPageState
from repro.core.states import LineState
from repro.errors import ReproError


def make_state(ncp=8):
    return PhysPageState(ppage=5, num_cache_pages=ncp)


class TestTable3Decoding:
    """The exact correspondence of Table 3."""

    def test_empty(self):
        state = make_state()
        assert state.decode(0) is LineState.EMPTY

    def test_present(self):
        state = make_state()
        state.mapped[2] = True
        assert state.decode(2) is LineState.PRESENT

    def test_dirty(self):
        state = make_state()
        state.mapped[2] = True
        state.cache_dirty = True
        assert state.decode(2) is LineState.DIRTY

    def test_stale(self):
        state = make_state()
        state.stale[3] = True
        assert state.decode(3) is LineState.STALE

    def test_dirty_applies_only_to_the_mapped_cache_page(self):
        # cache_dirty is a single bit; the dirty cache page is the one
        # whose mapped bit is set.
        state = make_state()
        state.mapped[2] = True
        state.cache_dirty = True
        assert state.decode(2) is LineState.DIRTY
        assert state.decode(1) is LineState.EMPTY

    def test_all_four_states_coexist_across_cache_pages(self):
        state = make_state()
        state.mapped[0] = True          # present... until dirty below
        state.stale[1] = True           # stale
        # cache page 2 empty
        assert state.decode(0) is LineState.PRESENT
        assert state.decode(1) is LineState.STALE
        assert state.decode(2) is LineState.EMPTY


class TestFindMappedCachePage:
    def test_returns_the_single_mapped_page(self):
        state = make_state()
        state.mapped[6] = True
        assert state.find_mapped_cache_page() == 6

    def test_raises_with_no_mapped_page(self):
        with pytest.raises(ReproError):
            make_state().find_mapped_cache_page()


class TestInvariants:
    def test_mapped_and_stale_disjoint(self):
        state = make_state()
        state.mapped[1] = True
        state.stale[1] = True
        with pytest.raises(ReproError):
            state.validate()

    def test_cache_dirty_requires_exactly_one_mapped(self):
        state = make_state()
        state.cache_dirty = True
        with pytest.raises(ReproError):
            state.validate()
        state.mapped[0] = True
        state.validate()  # fine now
        state.mapped[1] = True
        with pytest.raises(ReproError):
            state.validate()

    def test_clean_state_validates(self):
        make_state().validate()


class TestMappings:
    def test_add_and_find(self):
        state = make_state()
        mapping = state.add_mapping(asid=1, vpage=100)
        assert state.find_mapping(1, 100) is mapping
        assert state.find_mapping(1, 101) is None

    def test_add_is_idempotent(self):
        state = make_state()
        first = state.add_mapping(1, 100)
        second = state.add_mapping(1, 100)
        assert first is second
        assert len(state.mappings) == 1

    def test_remove(self):
        state = make_state()
        state.add_mapping(1, 100)
        removed = state.remove_mapping(1, 100)
        assert removed is not None
        assert state.mappings == []

    def test_remove_missing_returns_none(self):
        assert make_state().remove_mapping(1, 100) is None

    def test_cache_page_of_wraps_modulo(self):
        state = make_state(ncp=8)
        assert state.cache_page_of(3) == 3
        assert state.cache_page_of(11) == 3

    def test_icache_page_independent_width(self):
        state = PhysPageState(0, num_cache_pages=8, num_icache_pages=4)
        assert state.icache_page_of(7) == 3
        assert state.cache_page_of(7) == 7


class TestReset:
    def test_reset_clears_everything(self):
        state = make_state()
        state.mapped[1] = True
        state.stale[2] = True
        state.imapped[0] = True
        state.cache_dirty = True
        state.reset()
        assert not state.mapped.any()
        assert not state.stale.any()
        assert not state.imapped.any()
        assert not state.cache_dirty

    def test_reset_keeps_mappings_and_history(self):
        state = make_state()
        state.add_mapping(1, 100)
        state.last_cache_page = 4
        state.reset()
        assert len(state.mappings) == 1
        assert state.last_cache_page == 4
