"""Tests for the Section 3.3 architectural variants."""

import pytest

from repro.core.model import ConsistencyModel
from repro.core.states import Action, LineState, MemoryOp
from repro.core.variants import (DmaThroughCacheModel, PhysicallyIndexedModel,
                                 WRITE_THROUGH_OTHER, WRITE_THROUGH_TARGET,
                                 WriteThroughModel, multiprocessor_note,
                                 set_associative_note)
from repro.errors import ReproError

E, P, D, S = (LineState.EMPTY, LineState.PRESENT, LineState.DIRTY,
              LineState.STALE)


class TestWriteThroughDerivation:
    def test_no_dirty_state_in_the_tables(self):
        for table in (WRITE_THROUGH_TARGET, WRITE_THROUGH_OTHER):
            for (op, state), (action, nxt) in table.items():
                assert state is not D
                assert nxt is not D

    def test_no_flush_action_survives(self):
        # "There is also no need for the flush operation."
        for table in (WRITE_THROUGH_TARGET, WRITE_THROUGH_OTHER):
            for (op, state), (action, nxt) in table.items():
                assert action is not Action.FLUSH

    def test_three_states_per_op(self):
        for op in MemoryOp:
            rows = [s for (o, s) in WRITE_THROUGH_TARGET if o == op]
            assert len(rows) == 3


class TestWriteThroughModel:
    def test_write_leaves_present_not_dirty(self):
        model = WriteThroughModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        assert model.state(0) is P

    def test_unaligned_alias_still_goes_stale(self):
        # Staleness survives write-through: other cached copies are old.
        model = WriteThroughModel(4)
        model.apply(MemoryOp.CPU_READ, 1)
        model.apply(MemoryOp.CPU_WRITE, 0)
        assert model.state(1) is S

    def test_stale_read_still_purges(self):
        model = WriteThroughModel(4)
        model.apply(MemoryOp.CPU_READ, 1)
        model.apply(MemoryOp.CPU_WRITE, 0)
        actions = model.apply(MemoryOp.CPU_READ, 1)
        assert any(a.action is Action.PURGE for a in actions)

    def test_dma_read_never_requires_any_action(self):
        # Memory is never stale w.r.t. a write-through cache.
        model = WriteThroughModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        model.apply(MemoryOp.CPU_READ, 1)
        assert model.apply(MemoryOp.DMA_READ) == []

    def test_dma_write_stales_cached_copies(self):
        model = WriteThroughModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        model.apply(MemoryOp.DMA_WRITE)
        assert model.state(0) is S

    def test_never_holds_dirty(self):
        model = WriteThroughModel(4)
        for op, target in [(MemoryOp.CPU_WRITE, 0), (MemoryOp.CPU_READ, 1),
                           (MemoryOp.CPU_WRITE, 2), (MemoryOp.DMA_WRITE, None),
                           (MemoryOp.CPU_WRITE, 1)]:
            model.apply(op, target)
            assert D not in model.states


class TestPhysicallyIndexed:
    def test_cpu_traffic_needs_no_actions(self):
        model = PhysicallyIndexedModel()
        assert model.apply(MemoryOp.CPU_READ) == []
        assert model.apply(MemoryOp.CPU_WRITE) == []
        assert model.state is D

    def test_only_dma_creates_obligations(self):
        model = PhysicallyIndexedModel()
        model.apply(MemoryOp.CPU_WRITE)
        actions = model.apply(MemoryOp.DMA_READ)
        assert [a.action for a in actions] == [Action.FLUSH]

    def test_dma_write_purges_dirty(self):
        model = PhysicallyIndexedModel()
        model.apply(MemoryOp.CPU_WRITE)
        actions = model.apply(MemoryOp.DMA_WRITE)
        assert [a.action for a in actions] == [Action.PURGE]

    def test_write_through_physical_cache_needs_nothing_for_dma_read(self):
        model = PhysicallyIndexedModel(write_through=True)
        model.apply(MemoryOp.CPU_WRITE)
        assert model.state is P
        assert model.apply(MemoryOp.DMA_READ) == []


class TestDmaThroughCache:
    def test_dma_write_folds_into_cpu_write(self):
        model = DmaThroughCacheModel(4)
        model.apply(MemoryOp.DMA_WRITE, 0)
        assert model.state(0) is D   # behaves exactly like a CPU write

    def test_dma_read_folds_into_cpu_read(self):
        model = DmaThroughCacheModel(4)
        model.apply(MemoryOp.DMA_READ, 2)
        assert model.state(2) is P

    def test_folded_write_flushes_unaligned_dirty_alias(self):
        model = DmaThroughCacheModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        actions = model.apply(MemoryOp.DMA_WRITE, 1)
        assert any(a.action is Action.FLUSH and a.cache_page == 0
                   for a in actions)

    def test_requires_a_target(self):
        with pytest.raises(ReproError):
            DmaThroughCacheModel(4).apply(MemoryOp.DMA_WRITE)


class TestUnchangedRuleVariants:
    def test_set_associative_note_mentions_unique_tags(self):
        assert "unique" in set_associative_note()

    def test_multiprocessor_note_mentions_distributed_cache(self):
        assert "distributed" in multiprocessor_note()

    def test_base_model_is_the_set_associative_model(self):
        # Section 3.3: "the consistency rules remain the same" — the
        # variant *is* ConsistencyModel, applied per set.
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        assert model.state(0) is D
