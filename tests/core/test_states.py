"""Tests for the state and operation enums."""

from repro.core.states import Action, LineState, MemoryOp


class TestLineState:
    def test_four_states(self):
        assert {s.value for s in LineState} == {"E", "P", "D", "S"}

    def test_str_is_single_letter(self):
        assert str(LineState.EMPTY) == "E"
        assert str(LineState.DIRTY) == "D"


class TestMemoryOp:
    def test_six_events(self):
        assert len(list(MemoryOp)) == 6

    def test_cpu_classification(self):
        assert MemoryOp.CPU_READ.is_cpu
        assert MemoryOp.CPU_WRITE.is_cpu
        assert not MemoryOp.DMA_READ.is_cpu
        assert not MemoryOp.PURGE.is_cpu

    def test_dma_classification(self):
        assert MemoryOp.DMA_READ.is_dma
        assert MemoryOp.DMA_WRITE.is_dma
        assert not MemoryOp.CPU_READ.is_dma
        assert not MemoryOp.FLUSH.is_dma

    def test_cache_op_classification(self):
        assert MemoryOp.PURGE.is_cache_op
        assert MemoryOp.FLUSH.is_cache_op
        assert not MemoryOp.CPU_WRITE.is_cache_op

    def test_classifications_partition_the_events(self):
        for op in MemoryOp:
            assert sum([op.is_cpu, op.is_dma, op.is_cache_op]) == 1


class TestAction:
    def test_values(self):
        assert {a.value for a in Action} == {"-", "purge", "flush"}
