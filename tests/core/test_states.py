"""Tests for the state and operation enums."""

from repro.core.states import (ACTION_EVENT, CACHE_OP_EVENTS, CPU_EVENTS,
                               DMA_EVENTS, Action, LineState, MemoryOp)


class TestLineState:
    def test_four_states(self):
        assert {s.value for s in LineState} == {"E", "P", "D", "S"}

    def test_str_is_single_letter(self):
        assert str(LineState.EMPTY) == "E"
        assert str(LineState.DIRTY) == "D"


class TestMemoryOp:
    def test_six_events(self):
        assert len(list(MemoryOp)) == 6

    def test_cpu_classification(self):
        assert MemoryOp.CPU_READ.is_cpu
        assert MemoryOp.CPU_WRITE.is_cpu
        assert not MemoryOp.DMA_READ.is_cpu
        assert not MemoryOp.PURGE.is_cpu

    def test_dma_classification(self):
        assert MemoryOp.DMA_READ.is_dma
        assert MemoryOp.DMA_WRITE.is_dma
        assert not MemoryOp.CPU_READ.is_dma
        assert not MemoryOp.FLUSH.is_dma

    def test_cache_op_classification(self):
        assert MemoryOp.PURGE.is_cache_op
        assert MemoryOp.FLUSH.is_cache_op
        assert not MemoryOp.CPU_WRITE.is_cache_op

    def test_classifications_partition_the_events(self):
        for op in MemoryOp:
            assert sum([op.is_cpu, op.is_dma, op.is_cache_op]) == 1


class TestAction:
    def test_values(self):
        assert {a.value for a in Action} == {"-", "purge", "flush"}


class TestSharedEventAlphabet:
    """The module-level event groups are THE definition both enumerators
    build from; these tests pin them to the enums so a new event (or
    action) cannot be added without the shared groups following."""

    def test_groups_partition_the_events(self):
        groups = CPU_EVENTS + DMA_EVENTS + CACHE_OP_EVENTS
        assert sorted(groups, key=lambda op: op.value) == sorted(
            MemoryOp, key=lambda op: op.value)
        assert len(set(groups)) == len(groups)

    def test_groups_match_the_classification_properties(self):
        assert CPU_EVENTS == tuple(op for op in MemoryOp if op.is_cpu)
        assert DMA_EVENTS == tuple(op for op in MemoryOp if op.is_dma)
        assert CACHE_OP_EVENTS == tuple(op for op in MemoryOp
                                        if op.is_cache_op)

    def test_action_event_covers_every_real_action(self):
        assert set(ACTION_EVENT) == {a for a in Action if a is not Action.NONE}
        assert set(ACTION_EVENT.values()) == set(CACHE_OP_EVENTS)

    def test_enumerators_stay_in_sync(self):
        """The exhaustive checker and the conformance explorer derive
        their alphabets from the same shared groups."""
        from repro.conformance.explorer import Explorer
        from repro.core.exhaustive import event_alphabet

        base = event_alphabet(3)
        assert base == ([(op, t) for op in CPU_EVENTS for t in range(3)]
                        + [(op, None) for op in DMA_EVENTS])
        full = event_alphabet(3, include_cache_ops=True)
        assert full == base + [(op, t) for op in CACHE_OP_EVENTS
                               for t in range(3)]
        explorer = Explorer(num_cache_pages=3)
        assert explorer.alphabet == full
