"""Tests for the bounded exhaustive checker — and the exhaustive result
itself, which is part of the correctness story."""

import pytest

from repro.core.cache_control import CacheControl
from repro.core.exhaustive import (CheckReport, check_all_sequences,
                                   event_alphabet)
from repro.core.states import MemoryOp


class TestAlphabet:
    def test_size(self):
        # 2 CPU ops x n targets + 2 DMA ops
        assert len(event_alphabet(2)) == 6
        assert len(event_alphabet(4)) == 10

    def test_dma_events_have_no_target(self):
        assert (MemoryOp.DMA_READ, None) in event_alphabet(2)
        assert (MemoryOp.DMA_WRITE, None) in event_alphabet(2)

    def test_cache_ops_extend_the_alphabet(self):
        # The conformance explorer's alphabet adds Purge and Flush per
        # cache page (the last two rows of Table 2).
        assert len(event_alphabet(2, include_cache_ops=True)) == 10
        assert len(event_alphabet(3, include_cache_ops=True)) == 14
        assert (MemoryOp.PURGE, 1) in event_alphabet(2,
                                                     include_cache_ops=True)
        assert (MemoryOp.FLUSH, 0) in event_alphabet(2,
                                                     include_cache_ops=True)

    def test_default_alphabet_has_no_cache_ops(self):
        assert all(op not in (MemoryOp.PURGE, MemoryOp.FLUSH)
                   for op, _ in event_alphabet(3))


class TestExhaustiveResult:
    def test_default_depth_six_three_pages_is_clean(self):
        # The headline exhaustive statement: every one of the 8^6 event
        # sequences is judged, and none makes the engine skip an action.
        report = check_all_sequences()
        assert report.ok, report.violations[:3]
        assert report.num_cache_pages == 3
        assert report.depth == 6
        assert report.sequences == 8 ** 6
        # State dedup collapses the walk far below the naive step count.
        assert report.steps < 8 ** 6

    def test_depth_four_two_pages_is_clean(self):
        report = check_all_sequences(num_cache_pages=2, depth=4)
        assert report.ok, report.violations[:3]
        assert report.sequences == 6 ** 4

    def test_dedup_matches_the_naive_walk(self):
        fast = check_all_sequences(num_cache_pages=2, depth=4)
        naive = check_all_sequences(num_cache_pages=2, depth=4, dedup=False)
        assert naive.sequences == fast.sequences == 6 ** 4
        assert naive.steps == sum(6 ** d for d in range(1, 5))
        assert naive.steps > fast.steps
        assert naive.ok and fast.ok

    def test_report_counts(self):
        report = check_all_sequences(num_cache_pages=2, depth=2)
        assert isinstance(report, CheckReport)
        assert report.num_cache_pages == 2
        assert report.depth == 2


class TestCheckerDetectsBugs:
    @pytest.mark.parametrize("dedup", [True, False])
    def test_a_broken_engine_is_caught(self, monkeypatch, dedup):
        # Sabotage the engine so it never flushes: the checker must find a
        # sequence where the model's required flush was skipped.
        original_call = CacheControl.__call__

        # The checker watches the decision (the callbacks), so the
        # sabotage attacks the decision: forget dirtiness before acting,
        # and stanza 2's flush never fires.
        def no_dirty(self, state, op, target_vpage=None, **kwargs):
            state.cache_dirty = False       # forget dirtiness before acting
            return original_call(self, state, op, target_vpage, **kwargs)

        monkeypatch.setattr(CacheControl, "__call__", no_dirty)
        report = check_all_sequences(num_cache_pages=2, depth=3, dedup=dedup)
        assert not report.ok
        assert "skipped" in report.violations[0]
