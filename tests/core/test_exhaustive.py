"""Tests for the bounded exhaustive checker — and the exhaustive result
itself, which is part of the correctness story."""

import pytest

from repro.core.cache_control import CacheControl
from repro.core.exhaustive import (CheckReport, check_all_sequences,
                                   event_alphabet)
from repro.core.states import MemoryOp


class TestAlphabet:
    def test_size(self):
        # 2 CPU ops x n targets + 2 DMA ops
        assert len(event_alphabet(2)) == 6
        assert len(event_alphabet(4)) == 10

    def test_dma_events_have_no_target(self):
        assert (MemoryOp.DMA_READ, None) in event_alphabet(2)
        assert (MemoryOp.DMA_WRITE, None) in event_alphabet(2)


class TestExhaustiveResult:
    def test_depth_four_two_pages_is_clean(self):
        report = check_all_sequences(num_cache_pages=2, depth=4)
        assert report.ok, report.violations[:3]
        assert report.sequences == 6 ** 4
        assert report.steps == 6 ** 4 * 4

    def test_depth_three_three_pages_is_clean(self):
        report = check_all_sequences(num_cache_pages=3, depth=3)
        assert report.ok
        assert report.sequences == 8 ** 3

    def test_report_counts(self):
        report = check_all_sequences(num_cache_pages=2, depth=2)
        assert isinstance(report, CheckReport)
        assert report.num_cache_pages == 2
        assert report.depth == 2


class TestCheckerDetectsBugs:
    def test_a_broken_engine_is_caught(self, monkeypatch):
        # Sabotage the engine so it never flushes: the checker must find a
        # sequence where the model's required flush was skipped.
        original_call = CacheControl.__call__

        # The checker watches the decision (the callbacks), so the
        # sabotage attacks the decision: forget dirtiness before acting,
        # and stanza 2's flush never fires.
        def no_dirty(self, state, op, target_vpage=None, **kwargs):
            state.cache_dirty = False       # forget dirtiness before acting
            return original_call(self, state, op, target_vpage, **kwargs)

        monkeypatch.setattr(CacheControl, "__call__", no_dirty)
        report = check_all_sequences(num_cache_pages=2, depth=3)
        assert not report.ok
        assert "skipped" in report.violations[0]
