"""Tests for the formal line-level consistency model (Section 3)."""

import pytest

from repro.core.model import ConsistencyModel, RequiredAction
from repro.core.states import Action, LineState, MemoryOp
from repro.errors import ReproError

E, P, D, S = (LineState.EMPTY, LineState.PRESENT, LineState.DIRTY,
              LineState.STALE)


class TestInitialState:
    def test_all_empty_at_power_up(self):
        model = ConsistencyModel(4)
        assert all(s is E for s in model.states)

    def test_rejects_empty_cache(self):
        with pytest.raises(ReproError):
            ConsistencyModel(0)


class TestSingleAddressLifecycle:
    def test_read_then_write_then_flush(self):
        model = ConsistencyModel(4)
        assert model.apply(MemoryOp.CPU_READ, 0) == []
        assert model.state(0) is P
        assert model.apply(MemoryOp.CPU_WRITE, 0) == []
        assert model.state(0) is D
        model.apply(MemoryOp.FLUSH, 0)
        assert model.state(0) is E

    def test_aligned_aliases_share_state_and_need_no_actions(self):
        # Two virtual addresses that align select the same cache page; the
        # model sees a single line, so alternating writes cost nothing.
        model = ConsistencyModel(4)
        for _ in range(10):
            assert model.apply(MemoryOp.CPU_WRITE, 2) == []
        assert model.state(2) is D


class TestUnalignedAliases:
    def test_write_then_read_through_other_alias_flushes(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        actions = model.apply(MemoryOp.CPU_READ, 1)
        assert RequiredAction(Action.FLUSH, 0) in actions
        assert model.state(0) is E
        assert model.state(1) is P

    def test_write_then_write_through_other_alias(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_WRITE, 0)
        actions = model.apply(MemoryOp.CPU_WRITE, 1)
        assert RequiredAction(Action.FLUSH, 0) in actions
        assert model.state(0) is E
        assert model.state(1) is D

    def test_write_makes_present_aliases_stale(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_READ, 0)
        model.apply(MemoryOp.CPU_READ, 1)
        model.apply(MemoryOp.CPU_WRITE, 2)
        assert model.state(0) is S
        assert model.state(1) is S
        assert model.state(2) is D

    def test_reading_a_stale_alias_purges_it(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_READ, 0)
        model.apply(MemoryOp.CPU_WRITE, 1)   # stales 0
        actions = model.apply(MemoryOp.CPU_READ, 0)
        assert RequiredAction(Action.PURGE, 0) in actions
        # ... after first flushing the dirty alias at 1:
        assert RequiredAction(Action.FLUSH, 1) in actions
        assert model.state(0) is P

    def test_flush_of_dirty_other_precedes_target_purge(self):
        # Section 3.2: an empty/stale line must not be (re)filled before
        # dirty data in a similarly mapped line reaches memory.
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_READ, 0)
        model.apply(MemoryOp.CPU_WRITE, 1)
        actions = model.apply(MemoryOp.CPU_READ, 0)
        kinds = [a.action for a in actions]
        assert kinds.index(Action.FLUSH) < kinds.index(Action.PURGE)


class TestDma:
    def test_dma_read_flushes_the_dirty_line(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_WRITE, 1)
        actions = model.apply(MemoryOp.DMA_READ)
        assert actions == [RequiredAction(Action.FLUSH, 1)]
        assert model.state(1) is E

    def test_dma_read_of_clean_state_needs_nothing(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_READ, 1)
        assert model.apply(MemoryOp.DMA_READ) == []
        assert model.state(1) is P

    def test_dma_write_purges_dirty_and_stales_present(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.CPU_READ, 0)
        model.apply(MemoryOp.CPU_READ, 2)
        model.apply(MemoryOp.CPU_WRITE, 1)   # 0, 2 stale; 1 dirty
        model.apply(MemoryOp.CPU_READ, 0)    # flush 1, purge 0 -> 0 P, 1 E
        actions = model.apply(MemoryOp.DMA_WRITE)
        assert model.state(0) is S
        assert model.state(2) is S
        assert not model.dirty_cache_pages()

    def test_dma_ops_require_no_target(self):
        model = ConsistencyModel(4)
        model.apply(MemoryOp.DMA_WRITE)  # must not raise

    def test_cpu_ops_require_a_target(self):
        with pytest.raises(ReproError):
            ConsistencyModel(4).apply(MemoryOp.CPU_READ)


class TestInvariant:
    def test_at_most_one_dirty_line_ever(self):
        # Exhaustive short-sequence check: every sequence of 4 operations
        # over 2 cache pages maintains the single-dirty invariant.
        import itertools
        ops = [(MemoryOp.CPU_READ, 0), (MemoryOp.CPU_READ, 1),
               (MemoryOp.CPU_WRITE, 0), (MemoryOp.CPU_WRITE, 1),
               (MemoryOp.DMA_READ, None), (MemoryOp.DMA_WRITE, None)]
        for sequence in itertools.product(ops, repeat=4):
            model = ConsistencyModel(2)
            for op, target in sequence:
                model.apply(op, target)
                model.validate()

    def test_validate_raises_on_forged_double_dirty(self):
        model = ConsistencyModel(4)
        model.states[0] = D
        model.states[1] = D
        with pytest.raises(ReproError):
            model.validate()


class TestBounds:
    def test_out_of_range_target(self):
        with pytest.raises(ReproError):
            ConsistencyModel(4).apply(MemoryOp.CPU_READ, 4)

    def test_state_query_bounds(self):
        with pytest.raises(ReproError):
            ConsistencyModel(4).state(-1)
