"""The kernel's recovery paths under injected faults: bounded retry with
clock-charged backoff, frame quarantine, TLB parity refill, fault-loop
escalation, and structured error context."""

import numpy as np
import pytest

from repro.errors import (DiskIOError, DmaTransferError, FaultLoopError,
                          KernelError)
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.hw.params import MachineConfig
from repro.kernel.disk import MAX_TRANSFER_ATTEMPTS, synthetic_block
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F


def boot(*rules, seed=0, **kernel_kwargs):
    kernel = Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=128),
                    with_unix_server=False, buffer_cache_pages=8,
                    **kernel_kwargs)
    injector = FaultInjector(FaultPlan(seed=seed, rules=tuple(rules)),
                             kernel.machine.clock)
    injector.attach_kernel(kernel)
    return kernel, injector


class TestDiskRetry:
    def test_transient_read_recovers_with_correct_data(self):
        kernel, injector = boot(
            FaultRule("disk.read.transient", max_fires=2, burst=1))
        kernel.disk.preload(1, 1)
        frame = kernel.buffer_cache.read_block(1, 0)
        wpp = kernel.machine.memory.words_per_page
        assert np.array_equal(kernel.machine.memory.read_page(frame),
                              synthetic_block(1, 0, wpp))
        assert kernel.disk.retries >= 1
        assert kernel.machine.counters.disk_retries == kernel.disk.retries
        recovered = injector.records("disk.read.transient")
        assert all(r.resolution == "recovered" for r in recovered)

    def test_transient_write_recovers_onto_the_platter(self):
        kernel, injector = boot(
            FaultRule("disk.write.transient", max_fires=1))
        kernel.disk.preload(1, 1)
        frame = kernel.buffer_cache.read_block(1, 0)
        wpp = kernel.machine.memory.words_per_page
        fresh = np.full(wpp, 7, dtype=np.uint64)
        kernel.machine.memory.write_words(
            kernel.machine.memory.page_base(frame), fresh)
        kernel.machine.oracle.note_page_write(
            kernel.machine.memory.page_base(frame), fresh)
        kernel.disk.write_block(1, 0, frame)
        assert np.array_equal(kernel.disk.block(1, 0), fresh)
        assert kernel.disk.retries == 1

    def test_backoff_is_charged_to_the_simulated_clock(self):
        def cycles_with(rules):
            kernel, _ = boot(*rules)
            kernel.disk.preload(1, 1)
            kernel.buffer_cache.read_block(1, 0)
            return kernel.machine.clock.cycles

        clean = cycles_with([])
        faulted = cycles_with(
            [FaultRule("disk.read.transient", max_fires=2, burst=1)])
        backoff = MachineConfig().cost.disk_retry_backoff
        # Two absorbed retries charge at least backoff * (1 + 2) beyond
        # the clean run (plus the re-issued preparation work).
        assert faulted >= clean + 3 * backoff

    def test_exhausted_budget_raises_with_attempts_and_context(self):
        kernel, injector = boot(
            FaultRule("disk.read.transient", burst=MAX_TRANSFER_ATTEMPTS,
                      max_fires=1))
        kernel.disk.preload(1, 1)
        with pytest.raises(DiskIOError) as excinfo:
            kernel.disk.read_block(1, 0, ppage=60)
        error = excinfo.value
        assert error.attempts == MAX_TRANSFER_ATTEMPTS
        assert error.context["file_id"] == 1
        assert error.context["ppage"] == 60
        assert error.record.resolution == "detected"
        assert kernel.disk.retries == MAX_TRANSFER_ATTEMPTS - 1

    def test_missing_block_is_terminal_with_structured_context(self):
        kernel, injector = boot(FaultRule("disk.read.missing", max_fires=1))
        kernel.disk.preload(3, 1)
        with pytest.raises(KernelError) as excinfo:
            kernel.buffer_cache.read_block(3, 0)
        assert excinfo.value.context == {"file_id": 3, "page": 0}
        assert "file_id=3" in str(excinfo.value)
        assert kernel.disk.retries == 0  # no retry for terminal faults


class TestDmaTransferFaults:
    def test_corrupt_transfer_is_status_detected_and_retried(self):
        kernel, injector = boot(
            FaultRule("dma.transfer.corrupt", max_fires=1))
        kernel.disk.preload(1, 1)
        frame = kernel.buffer_cache.read_block(1, 0)
        # The retry re-ran the transfer: memory holds the true block and
        # the corrupted delivery never escaped the device protocol.
        wpp = kernel.machine.memory.words_per_page
        assert np.array_equal(kernel.machine.memory.read_page(frame),
                              synthetic_block(1, 0, wpp))
        [record] = injector.records("dma.transfer.corrupt")
        assert record.resolution == "recovered"
        assert kernel.machine.oracle.clean

    def test_partial_transfer_records_delivered_words(self):
        kernel, injector = boot(
            FaultRule("dma.transfer.partial", max_fires=1))
        kernel.disk.preload(1, 1)
        kernel.buffer_cache.read_block(1, 0)
        [record] = injector.records("dma.transfer.partial")
        assert 1 <= record.detail["words"] \
            < kernel.machine.memory.words_per_page
        assert record.resolution == "recovered"

    def test_persistent_corruption_quarantines_the_frame(self):
        # A frame that fails the whole retry budget is suspect hardware:
        # the buffer cache retires it and satisfies the read from a fresh
        # frame.  Enough consecutive fires to also kill one more single
        # attempt would need 2 * budget; give exactly one budget's worth.
        kernel, injector = boot(
            FaultRule("dma.transfer.corrupt", burst=MAX_TRANSFER_ATTEMPTS,
                      max_fires=1))
        kernel.disk.preload(1, 1)
        frame = kernel.buffer_cache.read_block(1, 0)
        assert kernel.machine.counters.frames_quarantined == 1
        [bad_frame] = kernel.quarantined
        assert frame != bad_frame
        wpp = kernel.machine.memory.words_per_page
        assert np.array_equal(kernel.machine.memory.read_page(frame),
                              synthetic_block(1, 0, wpp))

    def test_quarantined_frame_never_reenters_circulation(self):
        kernel, injector = boot()
        frame = kernel.allocate_frame()
        kernel.quarantine_frame(frame)
        kernel.free_frame(frame)        # a stale release must be a no-op
        drained = set()
        while len(kernel.free_list):
            drained.add(kernel.free_list.allocate())
        assert frame not in drained


class TestTlbParity:
    def test_corrupt_entry_is_invalidated_and_refilled(self):
        kernel, injector = boot(FaultRule("tlb.entry.corrupt", max_fires=1))
        task = kernel.create_task("t")
        vpage = task.allocate_anon(1)
        task.write(vpage, 0, 9)         # populates the TLB
        assert task.read(vpage, 0) == 9  # parity hit: refill, same value
        assert task.read(vpage, 0) == 9
        assert kernel.machine.counters.tlb_parity_recoveries == 1
        [record] = injector.records("tlb.entry.corrupt")
        assert record.resolution == "recovered"
        assert kernel.machine.oracle.clean

    def test_parity_recovery_is_charged(self):
        def cycles_with(rules):
            kernel, _ = boot(*rules)
            task = kernel.create_task("t")
            vpage = task.allocate_anon(1)
            task.write(vpage, 0, 9)
            for _ in range(4):
                task.read(vpage, 0)
            return kernel.machine.clock.cycles

        clean = cycles_with([])
        faulted = cycles_with([FaultRule("tlb.entry.corrupt", max_fires=2)])
        assert faulted > clean


class TestFaultLoop:
    def test_bounded_stall_is_absorbed(self):
        from repro.hw.machine import MAX_FAULT_RETRIES
        kernel, injector = boot(
            FaultRule("kernel.fault.stall", burst=MAX_FAULT_RETRIES - 1,
                      max_fires=1))
        task = kernel.create_task("t")
        vpage = task.allocate_anon(1)
        task.write(vpage, 0, 5)          # first access faults, stalls, retries
        assert task.read(vpage, 0) == 5
        assert injector.fired("kernel.fault.stall") == MAX_FAULT_RETRIES - 1
        assert all(r.resolution == "retried"
                   for r in injector.records("kernel.fault.stall"))

    def test_unbounded_stall_escalates_with_diagnostics(self):
        from repro.hw.machine import MAX_FAULT_RETRIES
        kernel, injector = boot(FaultRule("kernel.fault.stall"))
        task = kernel.create_task("t")
        vpage = task.allocate_anon(1)
        with pytest.raises(FaultLoopError) as excinfo:
            task.write(vpage, 0, 5)
        error = excinfo.value
        assert error.context["asid"] == task.asid
        assert error.context["attempts"] == MAX_FAULT_RETRIES
        assert error.context["access"] == "write"
        assert f"asid={task.asid}" in str(error)
        assert "0x" in str(error)        # the faulting vaddr is rendered
