"""Snoop-race fault injection: the four ``smp.snoop.*`` points, their
consequential-by-construction contract, and the detected-or-harmless
invariant on a cluster."""

import pytest

from repro.faults import (ALL_POINTS, CONSISTENCY_POINTS, DIVERGENCE_POINTS,
                          POINT_DESCRIPTIONS, SNOOP_POINTS, FaultInjector,
                          FaultPlan, FaultRule, classify_point, run_chaos)
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster
from repro.hw.stats import Clock, Counters

PAGE = 4096


def make_cluster(n_cpus=2, point=None):
    geo = CacheGeometry(size=16 * 1024)
    mem = PhysicalMemory(16, PAGE)
    clock = Clock()
    cluster = CoherentCluster(n_cpus, geo, mem, CostModel(), clock,
                              Counters())
    injector = None
    if point is not None:
        injector = FaultInjector(
            FaultPlan(seed=0, rules=(FaultRule(point, rate=1.0),)), clock)
        cluster.injector = injector
    return cluster, mem, injector


class TestCatalogExtension:
    def test_snoop_points_are_consistency_and_divergence(self):
        assert SNOOP_POINTS <= CONSISTENCY_POINTS
        assert SNOOP_POINTS <= DIVERGENCE_POINTS

    def test_descriptions_lockstep_with_all_points(self):
        # The docstring promise: one description per point, no drift.
        assert set(POINT_DESCRIPTIONS) == set(ALL_POINTS)

    def test_classification_is_total(self):
        for point in ALL_POINTS:
            assert classify_point(point) in ("snoop-race", "consistency",
                                             "recoverable", "terminal")
        for point in SNOOP_POINTS:
            assert classify_point(point) == "snoop-race"


class TestInvalidateDrop:
    def test_remote_copy_survives_the_store(self):
        cluster, mem, inj = make_cluster(
            point="smp.snoop.invalidate.drop")
        cluster.read(1, 0, 0)           # cpu1 caches the line
        cluster.write(0, 0, 0, 42)      # invalidation is dropped
        set_idx = cluster.geometry.set_index(0)
        assert cluster.resident_copies(set_idx, 0) == 2
        assert cluster.coherence_invalidations == 0
        # cpu1 now reads the stale cached word: the race is observable.
        assert cluster.caches[1].read(0, 0) == 0
        [record] = inj.audit
        assert record.consequential
        assert record.detail == {"ppage": 0, "cpu": 0, "victim": 1}
        assert record.ppage in inj.consistency_frames()

    def test_without_a_resident_peer_the_point_is_silent(self):
        cluster, mem, inj = make_cluster(
            point="smp.snoop.invalidate.drop")
        cluster.write(0, 0, 0, 42)      # no peer copy -> nothing to race
        assert inj.audit == []


class TestWritebackStale:
    def test_reader_fills_from_stale_memory(self):
        cluster, mem, inj = make_cluster(
            point="smp.snoop.writeback.stale")
        cluster.write(0, 0, 0, 42)      # dirty on cpu0, memory still 0
        assert cluster.read(1, 0, 0) == 0   # write-back lost: stale fill
        assert cluster.coherence_writebacks == 0
        [record] = inj.audit
        assert record.consequential

    def test_clean_peer_never_consults_the_point(self):
        cluster, mem, inj = make_cluster(
            point="smp.snoop.writeback.stale")
        cluster.read(0, 0, 0)           # clean copy: no write-back to lose
        assert cluster.read(1, 0, 0) == 0
        assert inj.audit == []


class TestWritebackLost:
    def test_dirty_data_dies_with_the_invalidation(self):
        cluster, mem, inj = make_cluster(
            point="smp.snoop.writeback.lost")
        cluster.write(0, 0, 0, 42)      # dirty on cpu0
        cluster.write(1, 0, 0, 7)       # invalidates without write-back
        set_idx = cluster.geometry.set_index(0)
        assert cluster.resident_copies(set_idx, 0) == 1
        assert cluster.coherence_writebacks == 0
        # cpu1's own store landed; the dirty 42 never reached memory.
        cluster.flush_page_frame(cluster.caches[0].cache_page_of(0, 0), 0,
                                 None)
        assert mem.read_word(0) == 7
        [record] = inj.audit
        assert record.consequential


class TestInvalidateMisroute:
    def test_intended_copy_survives(self):
        cluster, mem, inj = make_cluster(
            point="smp.snoop.invalidate.misroute")
        cluster.read(1, 0, 0)
        cluster.write(0, 0, 0, 42)
        set_idx = cluster.geometry.set_index(0)
        # The invalidation landed one cache page over; both copies live.
        assert cluster.resident_copies(set_idx, 0) == 2
        [record] = inj.audit
        assert record.consequential


class TestRunOps:
    @pytest.mark.parametrize("point", sorted(SNOOP_POINTS))
    def test_batched_accesses_consult_the_points(self, point):
        cluster, mem, inj = make_cluster(point=point)
        write_run = point in ("smp.snoop.invalidate.drop",
                              "smp.snoop.invalidate.misroute",
                              "smp.snoop.writeback.lost")
        if point == "smp.snoop.writeback.stale":
            cluster.write_run(0, 0, 0, list(range(8)))   # dirty on cpu0
            cluster.read_run(1, 0, 0, 8)
        else:
            if point == "smp.snoop.writeback.lost":
                cluster.write_run(1, 0, 0, [9] * 8)      # dirty peer
            else:
                cluster.read_run(1, 0, 0, 8)             # resident peer
            cluster.write_run(0, 0, 0, list(range(8)))
        assert len(inj.audit) == 1
        assert inj.audit[0].consequential
        assert write_run or not cluster.coherence_invalidations


class TestChaosIntegration:
    @pytest.mark.parametrize("seed", range(8))
    def test_snoop_plans_are_detected_or_harmless(self, seed):
        report = run_chaos(seed, preset="snoop", steps=100, n_cpus=4)
        assert report.ok, report.failures
        assert report.n_cpus == 4
        assert set(report.conform_per_cpu) == {0, 1, 2, 3}
        for record_point in report.points_fired:
            if record_point.startswith("smp.snoop."):
                # every snoop record was settled by the verifier
                assert report.resolutions.get("latent", 0) == 0

    def test_uniprocessor_snoop_preset_is_silent(self):
        report = run_chaos(0, preset="snoop", steps=60, n_cpus=1)
        assert report.ok
        assert report.injections == 0
        assert report.conform_per_cpu == {}

    def test_report_round_trips_with_per_cpu_fields(self):
        import json

        report = run_chaos(3, preset="snoop", steps=80, n_cpus=2)
        data = json.loads(json.dumps(report.to_dict()))
        clone = type(report).from_dict(data)
        assert clone == report
        assert all(isinstance(cpu, int) for cpu in clone.conform_per_cpu)
