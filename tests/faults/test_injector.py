"""The injector's scheduling semantics: determinism, windows, bursts,
caps, scoping, and the audit trail."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (ALL_POINTS, CONSISTENCY_POINTS, DIVERGENCE_POINTS,
                          RECOVERABLE_POINTS, TERMINAL_POINTS, FaultInjector,
                          FaultPlan, FaultRule)
from repro.hw.stats import Clock


def injector(*rules, seed=0, clock=None):
    return FaultInjector(FaultPlan(seed=seed, rules=tuple(rules)),
                         clock or Clock())


class TestCatalog:
    def test_catalog_partitions_cleanly(self):
        assert DIVERGENCE_POINTS <= CONSISTENCY_POINTS
        assert not CONSISTENCY_POINTS & RECOVERABLE_POINTS
        assert not CONSISTENCY_POINTS & TERMINAL_POINTS
        assert ALL_POINTS == (CONSISTENCY_POINTS | RECOVERABLE_POINTS
                              | TERMINAL_POINTS)

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("pmap.flush.typo")

    def test_rate_and_burst_validated(self):
        with pytest.raises(ConfigurationError):
            FaultRule("pmap.flush.drop", rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule("pmap.flush.drop", burst=0)


class TestPlanParsing:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("disk.read.transient:0.1:2,pmap.flush.drop",
                               seed=7)
        assert plan.seed == 7
        assert plan.rules[0] == FaultRule("disk.read.transient", rate=0.1,
                                          burst=2)
        assert plan.rules[1].rate == 1.0

    def test_parse_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("  , ")


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            inj = injector(FaultRule("pmap.flush.drop", rate=0.5), seed=seed)
            return [inj.fires("pmap.flush.drop") is not None
                    for _ in range(64)]

        assert decisions(3) == decisions(3)
        assert decisions(3) != decisions(4)  # and the seed matters

    def test_rate_one_always_fires_without_consuming_entropy(self):
        inj = injector(FaultRule("pmap.flush.drop"))
        before = inj.rng.getstate()
        assert inj.fires("pmap.flush.drop") is not None
        assert inj.rng.getstate() == before


class TestScheduling:
    def test_unarmed_point_never_fires(self):
        inj = injector(FaultRule("pmap.flush.drop"))
        assert inj.fires("pmap.purge.drop") is None

    def test_max_fires_caps_rate_triggers(self):
        inj = injector(FaultRule("pmap.flush.drop", max_fires=2))
        fired = [inj.fires("pmap.flush.drop") for _ in range(5)]
        assert sum(r is not None for r in fired) == 2

    def test_burst_forces_consecutive_failures(self):
        # One rate-trigger plus two burst continuations = three in a row.
        inj = injector(FaultRule("disk.read.transient", burst=3, max_fires=1))
        fired = [inj.fires("disk.read.transient") for _ in range(5)]
        assert [r is not None for r in fired] == [True, True, True,
                                                  False, False]

    def test_window_gates_on_simulated_clock(self):
        clock = Clock()
        inj = injector(FaultRule("pmap.flush.drop", start_cycles=100,
                                 stop_cycles=200), clock=clock)
        assert inj.fires("pmap.flush.drop") is None       # before window
        clock.advance(150)
        assert inj.fires("pmap.flush.drop") is not None   # inside
        clock.advance(100)
        assert inj.fires("pmap.flush.drop") is None       # after

    def test_paused_scope_suppresses_and_restores(self):
        inj = injector(FaultRule("pmap.flush.drop"))
        with inj.paused():
            assert inj.fires("pmap.flush.drop") is None
        assert inj.fires("pmap.flush.drop") is not None

    def test_disable_is_terminal_until_enable(self):
        inj = injector(FaultRule("pmap.flush.drop"))
        inj.disable()
        assert inj.fires("pmap.flush.drop") is None
        inj.enable()
        assert inj.fires("pmap.flush.drop") is not None


class TestAuditTrail:
    def test_records_carry_clock_and_detail(self):
        clock = Clock()
        clock.advance(42)
        inj = injector(FaultRule("disk.read.transient"), clock=clock)
        record = inj.fires("disk.read.transient", file_id=3, page=1, ppage=9)
        assert record.cycles == 42
        assert record.ppage == 9
        assert record.detail["file_id"] == 3
        assert record.seq == 0
        record.resolve("recovered")
        assert "disk.read.transient" in str(record)
        assert "recovered" in str(record)

    def test_consistency_frames_collects_targeted_ppages(self):
        inj = injector(FaultRule("pmap.flush.drop"),
                       FaultRule("disk.read.transient"))
        inj.fires("pmap.flush.drop", ppage=5)
        inj.fires("disk.read.transient", ppage=6)   # recoverable, excluded
        assert inj.consistency_frames() == {5}

    def test_records_filter_by_point(self):
        inj = injector(FaultRule("pmap.flush.drop"),
                       FaultRule("pmap.purge.drop"))
        inj.fires("pmap.flush.drop", ppage=1)
        inj.fires("pmap.purge.drop", ppage=2)
        assert len(inj.records()) == 2
        assert [r.point for r in inj.records("pmap.purge.drop")] == \
            ["pmap.purge.drop"]
        assert inj.fired("pmap.flush.drop") == 1
