"""The chaos harness itself: determinism, the detected-or-harmless
verdicts per preset, and that the verifier actually rejects bad runs."""

import dataclasses

import pytest

from repro.core.oracle import Violation
from repro.faults import (FaultInjector, FaultPlan, build_plan, run_chaos,
                          run_chaos_suite, verify_report)
from repro.faults.harness import (PRESETS, ChaosReport, chaos_machine,
                                  render_suite)
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F

STEPS = 80  # short runs keep the suite quick; the CI job goes deeper


class TestPlanBuilding:
    def test_same_seed_same_plan(self):
        assert build_plan(5, "mixed") == build_plan(5, "mixed")
        assert build_plan(5, "mixed") != build_plan(6, "mixed")

    def test_control_preset_is_empty(self):
        assert build_plan(0, "control").rules == ()

    def test_unknown_preset_parses_as_explicit_plan(self):
        plan = build_plan(3, "pmap.flush.drop:0.5")
        assert plan.rules[0].point == "pmap.flush.drop"
        assert plan.seed == 3

    def test_presets_only_name_known_points(self):
        for preset, entries in PRESETS.items():
            for point, rate, burst in entries:
                rule_plan = build_plan(0, f"{point}:{rate}:{burst}")
                assert rule_plan.rules  # FaultRule validation accepted it


class TestChaosRuns:
    def test_control_run_is_clean_and_deep_verified(self):
        report = run_chaos(seed=0, preset="control", steps=STEPS)
        assert report.ok
        assert report.completed
        assert report.injections == 0
        assert report.violations == 0
        assert report.deep_verified

    def test_same_seed_reproduces_the_run_exactly(self):
        first = run_chaos(seed=11, preset="mixed", steps=STEPS)
        second = run_chaos(seed=11, preset="mixed", steps=STEPS)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    @pytest.mark.parametrize("preset",
                             ["transient", "consistency", "recovery",
                              "mixed"])
    def test_presets_uphold_the_invariant(self, preset):
        reports = run_chaos_suite(range(4), preset=preset, steps=STEPS)
        assert all(r.ok for r in reports), render_suite(reports)

    def test_trace_populates_the_event_summary(self):
        report = run_chaos(seed=1, preset="mixed", steps=STEPS, trace=True)
        assert report.event_summary
        assert report.event_summary.get("injection", 0) == report.injections

    def test_trace_defaults_off(self):
        report = run_chaos(seed=1, preset="mixed", steps=STEPS)
        assert report.event_summary == {}

    def test_trace_does_not_change_the_verdict(self):
        plain = run_chaos(seed=11, preset="mixed", steps=STEPS)
        traced = run_chaos(seed=11, preset="mixed", steps=STEPS, trace=True)
        plain_dict = dataclasses.asdict(plain)
        traced_dict = dataclasses.asdict(traced)
        plain_dict.pop("event_summary")
        traced_dict.pop("event_summary")
        assert plain_dict == traced_dict

    def test_transient_preset_never_records_violations(self):
        # No divergence-creating point is armed: recovery must fully
        # absorb every fault, so the oracle stays silent.
        for report in run_chaos_suite(range(4), preset="transient",
                                      steps=STEPS):
            assert report.violations == 0
            if report.completed:
                assert report.deep_verified

    def test_retries_show_up_in_the_clock(self):
        # The same seed with and without faults: the faulted run burns
        # strictly more simulated cycles whenever anything was absorbed.
        for seed in range(6):
            faulted = run_chaos(seed=seed, preset="transient", steps=STEPS)
            clean = run_chaos(seed=seed, preset="control", steps=STEPS)
            if faulted.completed and faulted.disk_retries:
                assert faulted.cycles > clean.cycles
                break
        else:
            pytest.skip("no seed in range produced an absorbed retry")


class TestVerifier:
    def _rig(self):
        kernel = Kernel(policy=CONFIG_F, config=chaos_machine(),
                        with_unix_server=False)
        kernel.machine.oracle.record_only = True
        injector = FaultInjector(FaultPlan(seed=0), kernel.machine.clock)
        injector.attach_kernel(kernel)
        report = ChaosReport(seed=0, preset="unit", steps=0, completed=True,
                             error=None, injections=0)
        return kernel, injector, report

    def test_unattributed_violation_fails_the_run(self):
        kernel, injector, report = self._rig()
        kernel.machine.oracle.violations.append(
            Violation(kind="cpu-read", paddr=0x5000, expected=1, actual=2))
        report.violations = 1
        verify_report(report, injector, kernel)
        assert not report.ok
        assert report.unattributed_violations == 1

    def test_attributed_violation_is_accepted(self):
        kernel, injector, report = self._rig()
        page_size = kernel.machine.page_size
        # No rules armed: fabricate the audit record directly.
        record = injector._record("pmap.flush.drop", {"ppage": 5})
        record.consequential = True
        kernel.machine.oracle.violations.append(
            Violation(kind="cpu-read", paddr=5 * page_size, expected=1,
                      actual=2))
        report.violations = 1
        verify_report(report, injector, kernel)
        assert report.ok

    def test_unobserved_consequential_read_prep_skip_fails(self):
        kernel, injector, report = self._rig()
        record = injector._record("pmap.dma_read_prep.skip", {"ppage": 7})
        record.consequential = True
        verify_report(report, injector, kernel)
        assert not report.ok
        assert any("never observed" in failure
                   for failure in report.failures)

    def test_harmless_read_prep_skip_is_accepted(self):
        kernel, injector, report = self._rig()
        record = injector._record("pmap.dma_read_prep.skip", {"ppage": 7})
        record.consequential = False
        verify_report(report, injector, kernel)
        assert report.ok
        assert record.resolution == "harmless"

    def test_masked_by_failed_transfer_is_accepted(self):
        kernel, injector, report = self._rig()
        skip = injector._record("pmap.dma_read_prep.skip", {"ppage": 7})
        skip.consequential = True
        injector._record("dma.transfer.corrupt", {"ppage": 7})
        verify_report(report, injector, kernel)
        assert report.ok
        assert skip.resolution == "masked-by-retry"


class TestConformanceShadow:
    def test_control_runs_shadow_clean(self):
        # Without divergence-creating injections the lockstep shadow must
        # agree with the Table 2 model exactly.
        report = run_chaos(seed=0, preset="control", steps=STEPS)
        assert report.ok
        assert report.conform_events > 0
        assert report.conform_divergences == 0
        assert report.conform_unattributed == 0

    def test_consistency_divergences_are_attributed(self):
        # Dropped flushes/purges and skipped preparations make the shadow
        # diverge — every divergence must land on an injected frame.
        reports = run_chaos_suite(range(6), preset="consistency",
                                  steps=STEPS)
        assert all(r.ok for r in reports), render_suite(reports)
        assert all(r.conform_unattributed == 0 for r in reports)
        assert any(r.conform_divergences > 0 for r in reports), \
            "no seed made the shadow diverge; the shadow may be blind"

    def test_conform_can_be_disabled(self):
        report = run_chaos(seed=0, preset="control", steps=40,
                           conform=False)
        assert report.ok
        assert report.conform_events == 0

    def test_unattributed_divergence_fails_the_run(self):
        from repro.conformance.lockstep import ConformanceMonitor, Divergence

        kernel = Kernel(policy=CONFIG_F, config=chaos_machine(),
                        with_unix_server=False)
        kernel.machine.oracle.record_only = True
        injector = FaultInjector(FaultPlan(seed=0), kernel.machine.clock)
        injector.attach_kernel(kernel)
        monitor = ConformanceMonitor(kernel, record_only=True)
        monitor.divergences.append(
            Divergence(seq=0, kind="state-divergence", frame=9,
                       cache_page=0, detail="fabricated"))
        report = ChaosReport(seed=0, preset="unit", steps=0, completed=True,
                             error=None, injections=0)
        verify_report(report, injector, kernel, monitor)
        assert not report.ok
        assert report.conform_unattributed == 1


class TestRendering:
    def test_suite_summary_carries_the_verdict(self):
        reports = run_chaos_suite(range(2), preset="control", steps=40)
        text = render_suite(reports)
        assert "control" in text
        assert "detected-or-harmless" in text
        assert "conform-observed" in text
