"""Property tests: compile -> replay round-trips every workload.

The trace compiler promises that a compiled run replays to *bit-identical*
observables — the same clock cycles, the same full-fidelity counters
(including the per-(cache, reason) flush/purge attribution), the same
event JSONL when events were recorded — on both the batched tier and the
exact per-op tier.  These tests state that promise as properties over the
whole workload set, including :class:`RandomOps` with seeded faults
armed (whose injected flush duplications, parity recoveries and DMA
retries must be baked into the stream, not replayed by luck).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import (evaluation_machine, make_workload,
                                        run_workload)
from repro.trace import compile_workload, load_trace, replay_trace, save_trace
from repro.trace.format import decode_counters
from repro.workloads import RandomOps
from repro.vm.policy import by_name

WORKLOAD_NAMES = ("afs-bench", "latex-paper", "kernel-build")
SCALE = 0.25
INJECT_PLAN = "pmap.flush.duplicate:0.3,tlb.entry.corrupt:0.1"


def assert_roundtrip(trace):
    """Replay on both tiers and check the full equivalence contract."""
    for batched in (True, False):
        result = replay_trace(trace, batched=batched)
        assert result.equivalent, (batched, result.mismatches)
        assert result.clock == trace.end_clock
        assert result.counters == decode_counters(trace.end_counters)
        if trace.n_events:
            assert result.n_events == trace.n_events
            assert result.events_sha256 == trace.end_events_sha256
    return replay_trace(trace)


class TestPaperWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    @settings(max_examples=2, deadline=None)
    @given(policy_name=st.sampled_from(("A", "F")))
    def test_compile_replay_roundtrips(self, name, policy_name):
        trace = compile_workload(make_workload(name, SCALE),
                                 by_name(policy_name))
        assert_roundtrip(trace)

    def test_events_roundtrip_bit_identical(self):
        trace = compile_workload(make_workload("latex-paper", SCALE),
                                 by_name("F"), trace_events=True)
        assert trace.n_events > 0
        assert_roundtrip(trace)

    def test_recorder_does_not_perturb_the_run(self):
        """The recorder is a pure observer: the recorded run ends in the
        same machine state as an uninstrumented run (run_workload itself
        shuts the kernel down afterwards, so the plain run here drives
        setup/execute directly), and replay rebuilds that final memory
        and cache state from the stream alone."""
        from repro.kernel.kernel import Kernel

        policy = by_name("F")

        plain = Kernel(policy=policy, config=evaluation_machine(),
                       buffer_cache_pages=48)
        workload = make_workload("latex-paper", SCALE)
        workload.setup(plain)
        start = plain.machine.clock.cycles
        workload.execute(plain)
        cycles = plain.machine.clock.cycles - start

        recorded = Kernel(policy=policy, config=evaluation_machine(),
                          buffer_cache_pages=48)
        trace = make_workload("latex-paper", SCALE).record(recorded)
        assert trace.end_clock - trace.start_clock == cycles
        assert recorded.machine.clock.cycles == plain.machine.clock.cycles
        assert recorded.machine.counters == plain.machine.counters

        # Replay rebuilds the recorded kernel's machine state exactly
        # (memory words are compared against the *recorded* kernel: task
        # identifiers are process-global, so a second kernel writes
        # different payload values even though its timing is identical).
        result = replay_trace(trace)
        assert result.equivalent
        machine = recorded.machine
        assert np.array_equal(result.memory._words, machine.memory._words)
        for mine, theirs in ((result.dcache, machine.dcache),
                             (result.icache, machine.icache)):
            assert np.array_equal(mine._tags, theirs._tags)
            assert np.array_equal(mine._dirty, theirs._dirty)
            assert np.array_equal(mine._data, theirs._data)


class TestRandomOpsWithFaults:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           policy_name=st.sampled_from(("A", "F")))
    def test_compile_replay_roundtrips(self, seed, policy_name):
        trace = compile_workload(
            RandomOps(scale=0.5, seed=seed), by_name(policy_name),
            inject=INJECT_PLAN, seed=seed)
        assert_roundtrip(trace)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_conform_and_events_compose(self, seed):
        trace = compile_workload(
            RandomOps(scale=0.3, seed=seed), by_name("F"),
            inject=INJECT_PLAN, seed=seed, conform=True, trace_events=True)
        assert_roundtrip(trace)


class TestHierarchyGeometries:
    """Non-direct-mapped L1s compile and replay bit-identically (the
    batched tier's specialized kernels assume a direct-mapped write-back
    cache, so these traces verify through the exact per-op tier); victim
    and L2 geometries are rejected outright — the artifact cannot carry
    lower-level fill costs."""

    @pytest.mark.parametrize("geometry", ("2way", "4way", "wt", "2way+wt"))
    def test_set_associative_and_wt_replay_bit_identical(self, geometry):
        from repro.hw.params import apply_geometry
        config = apply_geometry(evaluation_machine(), geometry)
        trace = compile_workload(RandomOps(scale=0.3, seed=7),
                                 by_name("F"), config=config)
        assert_roundtrip(trace)

    @pytest.mark.parametrize("geometry", ("victim8", "l2", "2way+victim8"))
    def test_victim_and_l2_geometries_are_rejected(self, geometry):
        from repro.errors import ConfigurationError
        from repro.hw.params import apply_geometry
        config = apply_geometry(evaluation_machine(), geometry)
        with pytest.raises(ConfigurationError, match="victim-cache or L2"):
            compile_workload(RandomOps(scale=0.3, seed=7), by_name("F"),
                             config=config)


class TestArtifactDeterminism:
    def test_save_load_save_is_byte_identical(self, tmp_path):
        """The on-disk artifact is deterministic: saving, loading and
        saving again produces the same bytes, and the loaded trace still
        replays equivalently (the CI ``trace`` job asserts the same
        property across two independent compiles)."""
        trace = compile_workload(RandomOps(scale=0.3, seed=11), by_name("F"))
        first = tmp_path / "a.trace"
        second = tmp_path / "b.trace"
        save_trace(first, trace)
        save_trace(second, load_trace(first))
        assert first.read_bytes() == second.read_bytes()
        assert_roundtrip(load_trace(second))
