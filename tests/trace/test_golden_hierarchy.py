"""Golden regressions for the hierarchy matrix: one set-associative
compiled trace and one victim-cache live run.

Two artifacts are pinned, one per representative configuration:

* ``tests/golden/latex-paper-2way-compiled.json`` — digests of the
  compiled op/value/sidecar streams for latex-paper on a **2-way** L1.
  Associativity flows through the artifact's encoded geometry and replay
  reconstructs the set-associative cache via the exact interpreter tier
  (the batched tier's specialized kernels assume a direct-mapped
  write-back L1 and fall back; see docs/trace-compiler.md), so the trace
  must still verify bit-identical under both exact and batched replay.
* ``tests/golden/latex-paper-victim8-run.json`` — the measured metrics
  and victim-cache counters of a **live** run (victim/L2 geometries are
  rejected by the compiler: the artifact cannot carry lower-level fill
  costs), pinning the hierarchy's cycle accounting end to end.

Payload values drawn by user processes come from process-global counters
(task names, write tokens), so both runs execute under a counter reset to
be independent of whatever tests ran earlier in the process.

Regenerate after an *intended* change with::

    PYTHONPATH=src python tests/trace/test_golden_hierarchy.py --regenerate
"""

import hashlib
import itertools
import json
import pathlib
import sys

if __name__ == "__main__":                       # --regenerate entry point
    sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                           .parent.parent.parent / "src"))

import repro.kernel.process as process_mod
from repro.analysis.experiments import make_workload, run_workload
from repro.analysis.sweep import machine_with_dcache
from repro.hw.params import apply_geometry
from repro.kernel.kernel import Kernel
from repro.kernel.task import Task
from repro.trace import compile_workload, replay_trace
from repro.vm.policy import by_name

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"
COMPILED_GOLDEN = GOLDEN_DIR / "latex-paper-2way-compiled.json"
RUN_GOLDEN = GOLDEN_DIR / "latex-paper-victim8-run.json"

WORKLOAD = "latex-paper"
SCALE = 0.25
POLICY = "F"
#: the live run uses a 32 KiB L1 — small enough that conflict evictions
#: actually recirculate through the victim cache (hits > 0).
RUN_DCACHE_KIB = 32
RUN_GEOMETRY = "victim8"


def _fresh_counters():
    class _Reset:
        def __enter__(self):
            self._saved = Task._names, process_mod._token_counter
            Task._names = itertools.count(1)
            process_mod._token_counter = itertools.count(0x1000)

        def __exit__(self, *exc):
            Task._names, process_mod._token_counter = self._saved
    return _Reset()


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def compile_2way_run():
    config = apply_geometry(machine_with_dcache(RUN_DCACHE_KIB), "2way")
    with _fresh_counters():
        return compile_workload(make_workload(WORKLOAD, SCALE),
                                by_name(POLICY), config=config)


def summarize_compiled(trace) -> dict:
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "policy": POLICY,
        "geometry": "2way",
        "dcache_kib": RUN_DCACHE_KIB,
        "n_ops": int(len(trace.ops)),
        "n_values": int(len(trace.values)),
        "n_sidecar": len(trace.sidecar),
        "ops_sha256": _sha(trace.ops.tobytes()),
        "values_sha256": _sha(trace.values.tobytes()),
        "sidecar_sha256": _sha(json.dumps(
            trace.sidecar, sort_keys=True,
            separators=(",", ":")).encode("utf-8")),
        "cycles": trace.end_clock - trace.start_clock,
        "end_counters": trace.end_counters,
    }


def run_victim8():
    config = apply_geometry(machine_with_dcache(RUN_DCACHE_KIB),
                            RUN_GEOMETRY)
    policy = by_name(POLICY)
    with _fresh_counters():
        kernel = Kernel(policy=policy, config=config)
        metrics = run_workload(make_workload(WORKLOAD, SCALE), policy,
                               config=config, kernel=kernel)
    return metrics, kernel.machine.counters


def summarize_run(metrics, counters) -> dict:
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "policy": POLICY,
        "geometry": RUN_GEOMETRY,
        "dcache_kib": RUN_DCACHE_KIB,
        "cycles": metrics.cycles,
        "victim_hits": counters.victim_hits,
        "victim_captures": counters.victim_captures,
        "l2_hits": counters.l2_hits,
        "l2_fills": counters.l2_fills,
        "metrics_sha256": _sha(json.dumps(
            metrics.to_dict(), sort_keys=True,
            separators=(",", ":")).encode("utf-8")),
    }


def _assert_matches(actual: dict, golden_path: pathlib.Path):
    golden = json.loads(golden_path.read_text())
    for key in golden:
        assert actual[key] == golden[key], (
            f"{key} diverged from {golden_path.name} — if the change is "
            f"intended, regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`")


def test_two_way_compiled_run_matches_golden():
    trace = compile_2way_run()
    _assert_matches(summarize_compiled(trace), COMPILED_GOLDEN)
    # The non-direct-mapped geometry replays through the exact tier;
    # both replay modes must still verify bit-identically and agree
    # with each other on the final clock and event stream.
    exact = replay_trace(trace, batched=False)
    batched = replay_trace(trace)
    assert exact.equivalent and batched.equivalent
    assert exact.clock == batched.clock
    assert exact.events_sha256 == batched.events_sha256


def test_victim_cache_run_matches_golden():
    metrics, counters = run_victim8()
    actual = summarize_run(metrics, counters)
    assert actual["victim_hits"] > 0          # the geometry is exercised
    _assert_matches(actual, RUN_GOLDEN)


if __name__ == "__main__":
    if "--regenerate" not in sys.argv[1:]:
        sys.exit(f"usage: {sys.argv[0]} --regenerate")
    summary = summarize_compiled(compile_2way_run())
    COMPILED_GOLDEN.write_text(json.dumps(summary, indent=2,
                                          sort_keys=True) + "\n")
    print(f"wrote {COMPILED_GOLDEN}")
    summary = summarize_run(*run_victim8())
    RUN_GOLDEN.write_text(json.dumps(summary, indent=2, sort_keys=True)
                          + "\n")
    print(f"wrote {RUN_GOLDEN}")
