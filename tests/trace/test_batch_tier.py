"""The batched tier (window fusion) under a workload built to trigger it.

The paper workloads never form a qualifying fusion window — their large
contiguous runs are bracketed by page flushes and purges, which are
consistency boundaries that close windows — so the exact per-op tier
carries all of their replay speedup.  This suite keeps the fusion
machinery honest with a synthetic workload whose execute phase is pure
streaming: block sweeps over pages that were faulted in during setup,
giving the compiler long disjoint access runs with no boundary between
them.  The assertions pin both that fusion actually engages (otherwise
the tier is dead code) and that it preserves the equivalence contract
against the exact tier.
"""

from repro.hw.params import WORD_SIZE
from repro.kernel.kernel import Kernel
from repro.trace import replay_trace
from repro.trace.format import decode_counters
from repro.trace.interp import (MIN_BATCH_RUNS, MIN_BATCH_WORDS,
                                MIN_OPEN_WORDS)
from repro.workloads.base import Workload

PAGES = 8
WORDS_PER_PAGE = 4096 // WORD_SIZE


class BlockSweep(Workload):
    """Pure streaming: full-page block writes then block reads over
    resident pages, no faults and no cache management in the measured
    window."""

    name = "block-sweep"

    def setup(self, kernel):
        self.task = kernel.create_task("sweep")
        self.base = self.task.allocate_anon(PAGES)
        for page in range(PAGES):          # fault every page in now
            self.task.write(self.base + page, 0, 1)

    def execute(self, kernel):
        values = list(range(WORDS_PER_PAGE))
        for page in range(PAGES):
            self.task.write_block(self.base + page, 0, values)
        self.out = [self.task.read_block(self.base + page, 0,
                                         WORDS_PER_PAGE)
                    for page in range(PAGES)]


def compile_sweep():
    kernel = Kernel()
    return BlockSweep().record(kernel)


class TestWindowFusion:
    def test_sweep_qualifies_for_fusion(self):
        # The workload is sized to clear every threshold with room.
        assert PAGES >= MIN_BATCH_RUNS
        assert WORDS_PER_PAGE >= MIN_OPEN_WORDS
        assert PAGES * WORDS_PER_PAGE >= MIN_BATCH_WORDS

    def test_fusion_engages_and_roundtrips(self):
        trace = compile_sweep()
        batched = replay_trace(trace, batched=True)
        assert batched.equivalent, batched.mismatches
        assert batched.batches >= 1
        assert batched.batched_ops >= MIN_BATCH_RUNS
        assert batched.fallbacks == 0

    def test_batched_and_exact_tiers_agree(self):
        trace = compile_sweep()
        batched = replay_trace(trace, batched=True)
        exact = replay_trace(trace, batched=False)
        assert exact.batches == 0
        assert batched.equivalent and exact.equivalent
        assert batched.clock == exact.clock == trace.end_clock
        assert batched.counters == exact.counters \
            == decode_counters(trace.end_counters)
