"""Golden-trace regression for one compiled run.

The compiler's output for latex-paper at the golden scale is pinned —
op-stream bytes, value stream, sidecar, clock window and end counters —
to ``tests/golden/latex-paper-compiled.json``.  A change to the recorder
(a new op, a reordered SYNC, a different run split) shows up here as a
digest diff even when replay still verifies, which is the point: the
artifact format is a contract with previously-written traces, not just
with this build's replayer.

Payload values drawn by user processes come from process-global counters
(task names, write tokens), so the compile runs under a counter reset to
be independent of whatever tests ran earlier in the process.

Regenerate after an *intended* compiler change with::

    PYTHONPATH=src python tests/trace/test_golden_compiled.py --regenerate
"""

import hashlib
import itertools
import json
import pathlib
import sys

if __name__ == "__main__":                       # --regenerate entry point
    sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                           .parent.parent.parent / "src"))

import repro.kernel.process as process_mod
from repro.analysis.experiments import make_workload
from repro.kernel.task import Task
from repro.trace import compile_workload, replay_trace
from repro.vm.policy import by_name

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent / "golden"
               / "latex-paper-compiled.json")
GOLDEN_WORKLOAD = "latex-paper"
GOLDEN_SCALE = 0.25
GOLDEN_POLICY = "F"


def compile_golden_run():
    """Compile the pinned run in a process-history-independent context."""
    names, tokens = Task._names, process_mod._token_counter
    Task._names = itertools.count(1)
    process_mod._token_counter = itertools.count(0x1000)
    try:
        return compile_workload(make_workload(GOLDEN_WORKLOAD, GOLDEN_SCALE),
                                by_name(GOLDEN_POLICY))
    finally:
        Task._names, process_mod._token_counter = names, tokens


def summarize(trace) -> dict:
    def sha(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    return {
        "workload": GOLDEN_WORKLOAD,
        "scale": GOLDEN_SCALE,
        "policy": GOLDEN_POLICY,
        "n_ops": int(len(trace.ops)),
        "n_values": int(len(trace.values)),
        "n_sidecar": len(trace.sidecar),
        "ops_sha256": sha(trace.ops.tobytes()),
        "values_sha256": sha(trace.values.tobytes()),
        "sidecar_sha256": sha(json.dumps(
            trace.sidecar, sort_keys=True,
            separators=(",", ":")).encode("utf-8")),
        "cycles": trace.end_clock - trace.start_clock,
        "end_counters": trace.end_counters,
    }


def test_compiled_run_matches_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    trace = compile_golden_run()
    actual = summarize(trace)
    for key in golden:
        assert actual[key] == golden[key], (
            f"compiled {key} diverged from the golden run — if the "
            f"compiler change is intended, regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`")
    assert replay_trace(trace).equivalent


if __name__ == "__main__":
    if "--regenerate" not in sys.argv[1:]:
        sys.exit(f"usage: {sys.argv[0]} --regenerate")
    summary = summarize(compile_golden_run())
    GOLDEN_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}")
