"""Tests for the JSON / Prometheus metrics exporter."""

import json

import pytest

from repro.hw.stats import Clock, Counters, FaultKind, Reason
from repro.obs.export import (PROM_PREFIX, SCALAR_FIELDS, metrics_dict,
                              parse_prometheus, to_json, to_prometheus,
                              verify_export)


@pytest.fixture
def counters():
    c = Counters()
    c.record_flush("dcache", Reason.DMA_READ, 100)
    c.record_flush("dcache", Reason.D_TO_I_COPY, 50)
    c.record_flush("icache", Reason.EXPLICIT, 10)
    c.record_purge("dcache", Reason.NEW_MAPPING, 30)
    c.record_fault(FaultKind.MAPPING, 300)
    c.record_fault(FaultKind.PROTECTION, 200)
    c.dma_writes = 4
    c.disk_retries = 2
    c.tlb_parity_recoveries = 1
    return c


@pytest.fixture
def clock():
    clock = Clock()
    clock.advance(12345)
    return clock


class TestMetricsDict:
    def test_sections(self, counters, clock):
        data = metrics_dict(counters, clock)
        assert data["counters"] == counters.snapshot()
        assert data["cycles"] == 12345
        assert data["flushes"]["dcache"]["dma-read"] == {
            "count": 1, "cycles": 100}
        assert data["purges"]["dcache"]["new-mapping"] == {
            "count": 1, "cycles": 30}
        assert data["faults"]["protection"] == {"count": 1, "cycles": 200}
        # every fault kind appears even at zero
        assert data["faults"]["consistency"] == {"count": 0, "cycles": 0}

    def test_clock_optional(self, counters):
        assert "cycles" not in metrics_dict(counters)

    def test_extra_merged(self, counters):
        data = metrics_dict(counters, extra={"workload": "afs-bench"})
        assert data["workload"] == "afs-bench"


class TestJson:
    def test_round_trips(self, counters, clock):
        data = json.loads(to_json(counters, clock))
        assert data["counters"]["disk_retries"] == 2
        assert data["cycles"] == 12345

    def test_deterministic(self, counters, clock):
        assert to_json(counters, clock) == to_json(counters, clock)


class TestPrometheus:
    def test_output_parses(self, counters, clock):
        samples = parse_prometheus(to_prometheus(counters, clock))
        assert samples[(f"{PROM_PREFIX}_cycles_total", ())] == 12345
        assert samples[(f"{PROM_PREFIX}_dma_writes_total", ())] == 4

    def test_every_scalar_field_is_a_sample(self, counters):
        samples = parse_prometheus(to_prometheus(counters))
        for field in SCALAR_FIELDS:
            assert (f"{PROM_PREFIX}_{field}_total", ()) in samples

    def test_labeled_breakdowns(self, counters):
        samples = parse_prometheus(to_prometheus(counters))
        assert samples[(f"{PROM_PREFIX}_page_flushes_total",
                        (("cache", "dcache"), ("reason", "dma-read")))] == 1
        assert samples[(f"{PROM_PREFIX}_flush_cycles_total",
                        (("cache", "dcache"), ("reason", "dma-read")))] == 100
        assert samples[(f"{PROM_PREFIX}_purge_cycles_total",
                        (("cache", "dcache"),
                         ("reason", "new-mapping")))] == 30
        assert samples[(f"{PROM_PREFIX}_faults_total",
                        (("kind", "protection"),))] == 1

    def test_help_and_type_precede_samples(self, counters):
        lines = to_prometheus(counters).splitlines()
        seen_type = set()
        for line in lines:
            if line.startswith("# TYPE"):
                seen_type.add(line.split()[2])
            elif not line.startswith("#") and line:
                name = line.split("{")[0].split()[0]
                assert name in seen_type, f"sample before TYPE: {line}"


class TestParser:
    def test_rejects_malformed_type(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE repro_x histogram\nrepro_x 1\n")

    def test_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="sample before TYPE"):
            parse_prometheus("repro_x 1\n")

    def test_rejects_non_integer_sample(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_prometheus(
                "# TYPE repro_x counter\nrepro_x 1.5e3\n")

    def test_rejects_unquoted_label(self):
        with pytest.raises(ValueError, match="unquoted label"):
            parse_prometheus(
                '# TYPE repro_x counter\nrepro_x{cache=dcache} 1\n')

    def test_rejects_unknown_comment(self):
        with pytest.raises(ValueError, match="unknown comment"):
            parse_prometheus("# COMMENT whatever\n")

    def test_blank_lines_ok(self):
        samples = parse_prometheus(
            "\n# HELP repro_x help\n# TYPE repro_x counter\n\nrepro_x 7\n")
        assert samples == {("repro_x", ()): 7}


class TestVerifyExport:
    def test_passes_on_synthetic_counters(self, counters, clock):
        verify_export(counters, clock)

    def test_passes_on_empty_counters(self):
        verify_export(Counters(), Clock())

    def test_passes_on_a_live_run(self):
        from repro.kernel.kernel import Kernel
        from repro.workloads.microbench import run_alias_write_loop

        kernel = Kernel()
        run_alias_write_loop(kernel, 200, aligned=False)
        verify_export(kernel.machine.counters, kernel.machine.clock)

    def test_catches_a_tampered_exporter(self, counters, clock, monkeypatch):
        # sanity: the gate actually gates — drop a section and it must trip
        import repro.obs.export as export

        real = export.metrics_dict

        def tampered(counters, clock=None, extra=None):
            data = real(counters, clock, extra)
            data["flushes"] = {}
            return data

        monkeypatch.setattr(export, "metrics_dict", tampered)
        with pytest.raises(AssertionError):
            export.verify_export(counters, clock)
