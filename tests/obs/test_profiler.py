"""Tests for the hierarchical cycle-attribution profiler."""

import pytest

from repro.hw.stats import Clock
from repro.kernel.kernel import Kernel
from repro.obs.profiler import (CycleProfiler, instrument_kernel,
                                profile_run)


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def profiler(clock):
    return CycleProfiler(clock)


class TestScopeStack:
    def test_cycles_land_in_the_active_scope(self, profiler, clock):
        profiler.start("run")
        clock.advance(10)                       # root self time
        with profiler.scope("a"):
            clock.advance(100)
            with profiler.scope("b"):
                clock.advance(1000)
        root = profiler.stop()
        a = root.children["a"]
        b = a.children["b"]
        assert root.cycles == 1110
        assert a.cycles == 1100                 # inclusive of b
        assert b.cycles == 1000
        assert root.self_cycles == 10
        assert a.self_cycles == 100

    def test_repeat_scopes_accumulate(self, profiler, clock):
        profiler.start()
        for _ in range(3):
            with profiler.scope("op"):
                clock.advance(5)
        root = profiler.stop()
        op = root.children["op"]
        assert op.cycles == 15
        assert op.count == 3

    def test_siblings_do_not_merge(self, profiler, clock):
        profiler.start()
        with profiler.scope("x"):
            with profiler.scope("leaf"):
                clock.advance(1)
        with profiler.scope("y"):
            with profiler.scope("leaf"):
                clock.advance(2)
        root = profiler.stop()
        assert root.children["x"].children["leaf"].cycles == 1
        assert root.children["y"].children["leaf"].cycles == 2
        # ...but aggregate() sums them by name
        assert profiler.aggregate()["leaf"] == (3, 2)

    def test_stop_closes_open_scopes(self, profiler, clock):
        profiler.start()
        profiler.push("left-open")
        clock.advance(7)
        root = profiler.stop()
        assert root.children["left-open"].cycles == 7
        assert not profiler.running

    def test_double_start_raises(self, profiler):
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()

    def test_stop_without_start_raises(self, profiler):
        with pytest.raises(RuntimeError):
            profiler.stop()

    def test_exception_inside_scope_still_pops(self, profiler, clock):
        profiler.start()
        with pytest.raises(RuntimeError):
            with profiler.scope("doomed"):
                clock.advance(3)
                raise RuntimeError("boom")
        clock.advance(4)
        root = profiler.stop()
        assert root.children["doomed"].cycles == 3
        assert root.self_cycles == 4


class TestInvariants:
    def test_self_cycles_sum_equals_total(self, profiler, clock):
        profiler.start()
        with profiler.scope("a"):
            clock.advance(11)
            with profiler.scope("b"):
                clock.advance(13)
        clock.advance(17)
        with profiler.scope("c"):
            clock.advance(19)
        profiler.stop()
        assert profiler.total_cycles == 60
        assert profiler.self_cycles_sum() == 60

    def test_captures_direct_cycle_bumps(self, profiler, clock):
        # fast paths bypass advance() and bump clock.cycles directly
        profiler.start()
        with profiler.scope("fast"):
            clock.cycles += 42
        profiler.stop()
        assert profiler.root.children["fast"].cycles == 42
        assert profiler.self_cycles_sum() == profiler.total_cycles

    def test_render_mentions_every_scope(self, profiler, clock):
        profiler.start("top")
        with profiler.scope("inner"):
            clock.advance(1)
        profiler.stop()
        table = profiler.render()
        assert "top" in table and "inner" in table


class TestInstrumentation:
    def test_detach_restores_behaviour(self):
        kernel = Kernel()
        profiler = CycleProfiler(kernel.machine.clock)
        profiler.start()
        inst = instrument_kernel(profiler, kernel)
        task = kernel.create_task("t")
        va = task.allocate_anon(1)
        task.write(va, 0, 1)
        inst.detach()
        profiler.stop()
        assert profiler.root.children["kernel.fault"].count > 0
        # after detach, kernel activity must not touch the profiler
        before = profiler.root.children["kernel.fault"].count
        task.write(task.allocate_anon(1), 0, 2)
        assert profiler.root.children["kernel.fault"].count == before
        # and the machine's fault hook must be the kernel's own handler
        assert kernel.machine.fault_handler == kernel.handle_fault

    def test_hw_scopes_reconcile_against_counters(self):
        report = profile_run("afs-bench", scale=0.1)
        for check in report.reconcile():
            assert check.ok, str(check)


class TestProfileRun:
    """Acceptance: per-scope cycles sum to Clock.cycles for all three
    paper workloads."""

    @pytest.mark.parametrize("workload",
                             ["afs-bench", "latex-paper", "kernel-build"])
    def test_self_cycles_sum_to_clock(self, workload):
        report = profile_run(workload, scale=0.2)
        profiler = report.profiler
        assert profiler.total_cycles > 0
        assert profiler.self_cycles_sum() == profiler.total_cycles
        assert report.ok, "\n".join(str(c) for c in report.reconcile())

    def test_render_is_complete(self):
        report = profile_run("afs-bench", scale=0.1)
        text = report.render()
        assert "cycle attribution: afs-bench" in text
        assert "workload:afs-bench" in text
        assert "per-reason breakdown" in text
        assert "reconciliation" in text
        assert "MISMATCH" not in text
