"""Tests for the structured event bus."""

import json

import pytest

from repro.hw.stats import Clock
from repro.obs.events import Event, EventBus, load_jsonl, write_jsonl


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def bus(clock):
    return EventBus(clock)


class TestLifecycle:
    def test_disabled_by_default(self, bus):
        assert not bus.enabled
        assert bus.publish("flush", cache="dcache") is None
        assert len(bus) == 0
        assert bus.published == 0

    def test_enable_disable(self, bus):
        bus.enable()
        assert bus.publish("flush") is not None
        bus.disable()
        assert bus.publish("flush") is None
        assert len(bus) == 1

    def test_enable_returns_self(self, bus):
        assert bus.enable() is bus


class TestPublication:
    def test_events_are_clock_stamped_and_sequenced(self, bus, clock):
        bus.enable()
        bus.publish("flush", frame=3)
        clock.advance(100)
        bus.publish("purge", frame=4)
        first, second = bus.events()
        assert (first.seq, first.cycles, first.kind) == (0, 0, "flush")
        assert (second.seq, second.cycles, second.kind) == (1, 100, "purge")
        assert first.detail == {"frame": 3}

    def test_kind_filter(self, bus):
        bus.enable()
        bus.publish("flush")
        bus.publish("purge")
        bus.publish("flush")
        assert len(bus.events("flush")) == 2
        assert len(bus.events("purge")) == 1

    def test_summary(self, bus):
        bus.enable()
        bus.publish("flush")
        bus.publish("flush")
        bus.publish("fault")
        assert bus.summary() == {"flush": 2, "fault": 1}


class TestRing:
    def test_bounded_retention(self, clock):
        bus = EventBus(clock, capacity=4)
        bus.enable()
        for i in range(10):
            bus.publish("flush", i=i)
        assert len(bus) == 4
        assert bus.published == 10
        assert [e.detail["i"] for e in bus.events()] == [6, 7, 8, 9]
        # sequence numbers keep counting across evictions
        assert bus.events()[-1].seq == 9

    def test_enable_can_resize(self, clock):
        bus = EventBus(clock, capacity=2)
        bus.enable(capacity=8)
        for i in range(5):
            bus.publish("flush", i=i)
        assert len(bus) == 5

    def test_clear(self, bus):
        bus.enable()
        bus.publish("flush")
        bus.clear()
        assert len(bus) == 0
        assert bus.published == 1


class TestSubscription:
    def test_subscribers_see_everything(self, clock):
        bus = EventBus(clock, capacity=2)
        bus.enable()
        seen = []
        bus.subscribe(seen.append)
        for i in range(6):
            bus.publish("flush", i=i)
        # the ring kept 2, the subscriber saw all 6
        assert len(seen) == 6
        assert len(bus) == 2

    def test_unsubscribe(self, bus):
        bus.enable()
        seen = []
        callback = bus.subscribe(seen.append)
        bus.publish("flush")
        bus.unsubscribe(callback)
        bus.publish("flush")
        assert len(seen) == 1

    def test_unsubscribe_unknown_is_noop(self, bus):
        bus.unsubscribe(lambda e: None)


class TestSerialization:
    def test_event_to_json_round_trips(self):
        event = Event(seq=7, cycles=42, kind="fault",
                      detail={"asid": 1, "classified": "mapping"})
        data = json.loads(event.to_json())
        assert data == {"seq": 7, "cycles": 42, "kind": "fault",
                        "asid": 1, "classified": "mapping"}

    def test_jsonl_round_trip(self, bus, tmp_path):
        bus.enable()
        bus.publish("flush", frame=1)
        bus.publish("purge", frame=2)
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(bus.events(), path) == 2
        loaded = load_jsonl(path)
        assert [d["kind"] for d in loaded] == ["flush", "purge"]
        assert loaded[1]["frame"] == 2


class TestMachineWiring:
    def test_machine_owns_one_bus(self):
        from repro.hw.params import small_machine
        from repro.hw.machine import Machine

        machine = Machine(small_machine())
        assert machine.dcache.bus is machine.bus
        assert machine.icache.bus is machine.bus
        assert machine.tlb.bus is machine.bus
        assert machine.dma.bus is machine.bus
        assert not machine.bus.enabled

    def test_cache_ops_publish(self):
        from repro.hw.params import small_machine
        from repro.hw.machine import Machine
        from repro.hw.stats import Reason

        machine = Machine(small_machine())
        machine.bus.enable()
        machine.dcache.flush_page_frame(0, 0, Reason.DMA_READ)
        machine.dcache.purge_page_frame(0, 0, Reason.NEW_MAPPING)
        flushes = machine.bus.events("flush")
        purges = machine.bus.events("purge")
        assert len(flushes) == 1 and len(purges) == 1
        assert flushes[0].detail["reason"] == "dma-read"
        assert flushes[0].detail["cache"] == "dcache"
        assert flushes[0].detail["cost_cycles"] > 0
        assert purges[0].detail["reason"] == "new-mapping"

    def test_fault_events_carry_classification(self):
        from repro.kernel.kernel import Kernel

        kernel = Kernel()
        kernel.machine.bus.enable()
        task = kernel.create_task("t")
        va = task.allocate_anon(1)
        task.write(va, 0, 1)
        kinds = {e.detail["classified"]
                 for e in kernel.machine.bus.events("fault")}
        assert "mapping" in kinds

    def test_injections_become_events(self):
        from repro.faults.injector import (FaultInjector, FaultPlan,
                                           FaultRule)
        from repro.kernel.kernel import Kernel

        kernel = Kernel()
        kernel.machine.bus.enable()
        plan = FaultPlan(seed=0, rules=(
            FaultRule("tlb.entry.corrupt", rate=1.0, max_fires=1),))
        FaultInjector(plan, kernel.machine.clock).attach_kernel(kernel)
        task = kernel.create_task("t")
        va = task.allocate_anon(1)
        task.write(va, 0, 1)
        task.read(va)
        injections = kernel.machine.bus.events("injection")
        recoveries = kernel.machine.bus.events("tlb-parity-recovery")
        assert len(injections) == 1
        assert injections[0].detail["point"] == "tlb.entry.corrupt"
        assert len(recoveries) == 1
