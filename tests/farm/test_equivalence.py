"""Serial/parallel equivalence: the farm's defining property.

Every consumer wired through the farm must produce results identical to
its historical serial loop — same counters, same reports, same bytes —
whether the batch runs in-process, across a pool, or out of the cache.
"""

import pytest

from repro.analysis.sweep import run_sweep, sweep_cache_sizes
from repro.core.exhaustive import check_all_sequences
from repro.farm import (Executor, JobSpec, ResultCache, farm_chaos_suite,
                        farm_exhaustive, farm_explore)
from repro.faults.harness import run_chaos_suite
from repro.vm.policy import CONFIG_F

SEEDS = range(4)
STEPS = 60


@pytest.fixture(scope="module")
def pool():
    return Executor(jobs=4, timeout=120.0)


class TestChaosEquivalence:
    def test_parallel_suite_matches_serial(self, pool):
        serial = run_chaos_suite(SEEDS, preset="mixed", steps=STEPS)
        farmed = run_chaos_suite(SEEDS, preset="mixed", steps=STEPS,
                                 executor=pool)
        assert [r.to_dict() for r in farmed] == \
               [r.to_dict() for r in serial]

    def test_jobs_argument_routes_through_the_farm(self):
        serial = run_chaos_suite(SEEDS, preset="transient", steps=STEPS)
        farmed = run_chaos_suite(SEEDS, preset="transient", steps=STEPS,
                                 jobs=2)
        assert [r.to_dict() for r in farmed] == \
               [r.to_dict() for r in serial]


class TestSweepEquivalence:
    SIZES = (32, 64)

    def test_parallel_sweep_matches_serial(self, pool):
        serial = sweep_cache_sizes("kernel-build", CONFIG_F, self.SIZES,
                                   scale=0.1)
        farmed = sweep_cache_sizes("kernel-build", CONFIG_F, self.SIZES,
                                   scale=0.1, executor=pool)
        assert farmed == serial           # dataclass equality, all counters

    def test_grid_sweep_matches_serial(self, pool):
        serial = run_sweep("kernel-build", ("A", "F"), self.SIZES,
                           scale=0.1)
        farmed = run_sweep("kernel-build", ("A", "F"), self.SIZES,
                           scale=0.1, executor=pool)
        assert farmed == serial


class TestExplorerEquivalence:
    def test_sharded_sweep_is_pool_invariant(self, pool):
        # The same shard batch through a serial and a parallel executor:
        # identical merged report, complete arc coverage.
        serial = farm_explore(0, 40, 3, Executor(jobs=1), shards=4)
        farmed = farm_explore(0, 40, 3, pool, shards=4)
        assert farmed.to_dict() == serial.to_dict()
        assert farmed.ok and farmed.sequences == 40
        assert farmed.coverage.complete


class TestExhaustiveEquivalence:
    def test_sharded_check_covers_the_full_space(self, pool):
        full = check_all_sequences(num_cache_pages=2, depth=4)
        merged = farm_exhaustive(2, 4, pool)
        assert merged.ok == full.ok
        assert merged.sequences == full.sequences
        assert merged.depth == full.depth


class TestCacheEquivalence:
    def test_cache_hit_rerun_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = lambda: Executor(jobs=1, cache=cache)  # noqa: E731
        first = farm_chaos_suite(SEEDS, "mixed", STEPS, run())
        stored = {p.name: p.read_bytes()
                  for p in tmp_path.glob("*.json")}
        assert len(stored) == len(list(SEEDS))

        executor = run()
        again = farm_chaos_suite(SEEDS, "mixed", STEPS, executor)
        assert executor.stats.cache_hits == len(list(SEEDS))
        assert [r.to_dict() for r in again] == \
               [r.to_dict() for r in first]
        # The rerun rewrote nothing: every entry is the original bytes.
        assert {p.name: p.read_bytes()
                for p in tmp_path.glob("*.json")} == stored

    def test_injected_failstop_is_a_result_not_a_failure(self, tmp_path):
        # A fault plan that fail-stops the run is detection — the spec's
        # deterministic outcome — so the farm records it as a payload
        # instead of burning retries on an infrastructure failure.
        spec = JobSpec.workload(workload="afs-bench", policy="F",
                                scale=0.25,
                                inject="disk.read.transient:0.1:2",
                                seed=7)
        (serial,) = Executor(jobs=1).run([spec])
        (pooled,) = Executor(jobs=2, timeout=120.0).run([spec])
        assert serial.ok and serial.attempts == 1
        assert serial.payload["failstop"]["type"] == "DiskIOError"
        assert pooled.payload == serial.payload

    def test_cached_workload_payload_is_exact(self, tmp_path):
        spec = JobSpec.workload(workload="afs-bench", policy="F",
                                scale=0.1)
        cache = ResultCache(tmp_path)
        (miss,) = Executor(jobs=1, cache=cache).run([spec])
        (hit,) = Executor(jobs=1, cache=cache).run([spec])
        assert hit.cache_hit
        assert hit.payload == miss.payload
