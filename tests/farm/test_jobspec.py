"""The job model: frozen, canonical, content-addressable.

A JobSpec must be a *value*: hashable, order-insensitive in its
parameters, stable under a JSON round trip, and hashing to a different
key the moment anything that could change the result changes — the
parameters, the schema, or the code fingerprint.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.farm import JobSpec

scalars = (st.none() | st.booleans() | st.integers(-2**31, 2**31)
           | st.floats(allow_nan=False, allow_infinity=False)
           | st.text("abcxyz_-/ ", max_size=12))
param_names = st.text("abcdefghij", min_size=1, max_size=8)
params = st.dictionaries(
    param_names,
    scalars | st.lists(scalars.filter(lambda v: v is not None), max_size=3),
    max_size=5)


class TestConstruction:
    def test_specs_are_hashable_values(self):
        a = JobSpec.chaos(seed=7, preset="mixed", steps=100)
        b = JobSpec.chaos(seed=7, preset="mixed", steps=100)
        assert a == b and hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_parameter_order_is_irrelevant(self):
        a = JobSpec.make("selftest", alpha=1, beta=2)
        b = JobSpec.make("selftest", beta=2, alpha=1)
        assert a == b and a.canonical() == b.canonical()

    def test_none_parameters_are_dropped(self):
        # Absent == default, so a spec written before a parameter existed
        # keys identically to one passing the parameter's default None.
        assert (JobSpec.workload(workload="afs-bench", policy="F", scale=1.0)
                == JobSpec.make("workload", workload="afs-bench",
                                policy="F", scale=1.0, dcache_kib=None))

    def test_conform_false_is_absent(self):
        spec = JobSpec.workload(workload="afs-bench", policy="F", scale=1.0,
                                conform=False)
        assert spec.get("conform") is None

    def test_non_scalar_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec.make("selftest", bad={"nested": 1})
        with pytest.raises(ConfigurationError):
            JobSpec.make("selftest", bad=[[1, 2]])

    def test_access(self):
        spec = JobSpec.chaos(seed=3)
        assert spec["seed"] == 3
        assert spec.get("missing", 42) == 42
        with pytest.raises(KeyError):
            spec["missing"]


class TestEncoding:
    def test_round_trip(self):
        spec = JobSpec.exhaustive(num_cache_pages=2, depth=5, prefix=(1, 0))
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.canonical() == spec.canonical()

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params)
    def test_round_trip_any_flat_params(self, kwargs):
        spec = JobSpec.make("selftest", **kwargs)
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.canonical() == spec.canonical()

    def test_canonical_is_deterministic_bytes(self):
        spec = JobSpec.chaos(seed=0, preset="mixed", steps=200)
        assert spec.canonical() == spec.canonical()
        assert " " not in spec.canonical()

    def test_label_names_the_kind(self):
        assert JobSpec.chaos(seed=9).label().startswith("chaos(")


class TestKeys:
    FP = "f" * 64

    def test_key_is_stable(self):
        spec = JobSpec.chaos(seed=1)
        assert spec.key(self.FP) == JobSpec.chaos(seed=1).key(self.FP)

    def test_key_changes_with_params(self):
        assert (JobSpec.chaos(seed=1).key(self.FP)
                != JobSpec.chaos(seed=2).key(self.FP))
        assert (JobSpec.chaos(seed=1, steps=100).key(self.FP)
                != JobSpec.chaos(seed=1, steps=200).key(self.FP))

    def test_uniprocessor_chaos_keys_predate_n_cpus(self):
        # Adding the n_cpus parameter must not orphan every cached
        # uniprocessor chaos result: 1 and None both key like the old spec.
        old = JobSpec.make("chaos", seed=5, preset="mixed", steps=200)
        assert JobSpec.chaos(seed=5).key(self.FP) == old.key(self.FP)
        assert JobSpec.chaos(seed=5, n_cpus=1).key(self.FP) == old.key(self.FP)
        assert JobSpec.chaos(seed=5, n_cpus=4).key(self.FP) != old.key(self.FP)

    def test_key_changes_with_kind_and_fingerprint(self):
        a = JobSpec.make("alpha", seed=1)
        b = JobSpec.make("beta", seed=1)
        assert a.key(self.FP) != b.key(self.FP)
        assert a.key(self.FP) != a.key("0" * 64)
