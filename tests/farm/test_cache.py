"""The result cache: byte-identical hits, poisoned entries self-heal.

The cache's contract is *never serve a wrong answer*: a hit returns the
exact payload the original run produced, and any entry that cannot prove
that — truncated, tampered, mis-keyed, unparseable — is deleted and
recomputed rather than returned.
"""

import json

from repro.farm import Executor, JobSpec, ResultCache

FP = "a" * 64


def entry_path(cache, key):
    return cache.root / f"{key}.json"


class TestRoundTrip:
    def test_hit_returns_the_stored_payload(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.chaos(seed=1)
        payload = {"report": {"ok": True, "seed": 1}}
        cache.put(spec.key(FP), spec, FP, payload)
        assert cache.get(spec.key(FP)) == payload
        assert cache.hits == 1 and cache.poisoned == 0

    def test_writes_are_canonical_bytes(self, tmp_path):
        # Two writers of the same key converge on identical bytes, so a
        # cache-hit rerun is byte-identical to the original run.
        cache = ResultCache(tmp_path)
        spec = JobSpec.chaos(seed=2)
        payload = {"b": 1, "a": [1, 2]}
        cache.put(spec.key(FP), spec, FP, payload)
        first = entry_path(cache, spec.key(FP)).read_bytes()
        cache.put(spec.key(FP), spec, FP, {"a": [1, 2], "b": 1})
        assert entry_path(cache, spec.key(FP)).read_bytes() == first

    def test_miss_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1 and cache.poisoned == 0


class TestPoisonedEntries:
    def put_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.chaos(seed=3)
        cache.put(spec.key(FP), spec, FP, {"report": {"ok": True}})
        return cache, spec.key(FP)

    def test_truncated_entry_is_discarded(self, tmp_path):
        cache, key = self.put_one(tmp_path)
        path = entry_path(cache, key)
        path.write_bytes(path.read_bytes()[:-20])
        assert cache.get(key) is None
        assert cache.poisoned == 1
        assert not path.exists()          # deleted, ready for recompute

    def test_tampered_payload_fails_the_checksum(self, tmp_path):
        cache, key = self.put_one(tmp_path)
        path = entry_path(cache, key)
        entry = json.loads(path.read_text())
        entry["payload"]["report"]["ok"] = False
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None and cache.poisoned == 1

    def test_miskeyed_entry_is_discarded(self, tmp_path):
        cache, key = self.put_one(tmp_path)
        wrong = "b" * 64
        entry_path(cache, key).rename(entry_path(cache, wrong))
        assert cache.get(wrong) is None and cache.poisoned == 1

    def test_poisoned_entry_is_recomputed_through_the_executor(self,
                                                              tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(jobs=1, cache=cache)
        spec = JobSpec.selftest(mode="ok", value=7)
        (first,) = executor.run([spec])
        assert not first.cache_hit
        path = entry_path(cache, spec.key(executor.fingerprint))
        path.write_text("{ not json")
        (again,) = executor.run([spec])
        assert not again.cache_hit        # poisoned entry did not serve
        assert again.payload["value"] == 7
        assert cache.poisoned == 1
        (third,) = executor.run([spec])   # healed: the rewrite hits
        assert third.cache_hit and third.payload == again.payload


class TestMaintenance:
    def test_stats_gc_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = JobSpec.chaos(seed=1)
        stale = JobSpec.chaos(seed=2)
        cache.put(fresh.key(FP), fresh, FP, {"r": 1})
        cache.put(stale.key("0" * 64), stale, "0" * 64, {"r": 2})
        stats = cache.stats(FP)
        assert stats["entries"] == 2 and stats["stale"] == 1
        assert stats["kinds"] == {"chaos": 2}
        assert cache.gc(FP) == 1          # only the stale entry goes
        assert cache.get(fresh.key(FP)) == {"r": 1}
        assert cache.clear() == 1
        assert cache.stats(FP)["entries"] == 0
