"""Fork-shared snapshot prewarming."""

import multiprocessing

import pytest

from repro.farm import (Executor, JobSpec, code_fingerprint,
                        fork_available, prewarm_fork_snapshot,
                        snapshot_info)


def test_prewarm_builds_and_reports_the_snapshot():
    info = prewarm_fork_snapshot(refresh=True)
    assert info["fingerprint"] == code_fingerprint()
    assert info["table_arcs"] > 0
    assert info["policies"] == ["A", "B", "C", "D", "E", "F"]
    assert snapshot_info() is info


def test_prewarm_is_idempotent():
    first = prewarm_fork_snapshot()
    assert prewarm_fork_snapshot() is first
    assert prewarm_fork_snapshot(refresh=True) is not first


def test_fork_available_matches_multiprocessing():
    assert fork_available() == (
        "fork" in multiprocessing.get_all_start_methods())


@pytest.mark.skipif(not fork_available(),
                    reason="platform has no fork start method")
def test_pool_run_on_fork_prewarms_the_parent():
    import repro.farm.snapshot as snapshot_module
    snapshot_module._prewarmed = None
    executor = Executor(jobs=2, timeout=30.0, start_method="fork")
    outcomes = executor.run([JobSpec.selftest(mode="ok", value=i)
                             for i in range(4)])
    assert all(o.ok for o in outcomes)
    assert snapshot_info() is not None


def test_spawn_pool_skips_the_prewarm():
    import repro.farm.snapshot as snapshot_module
    snapshot_module._prewarmed = None
    executor = Executor(jobs=2, timeout=60.0, start_method="spawn")
    outcomes = executor.run([JobSpec.selftest(mode="ok", value=1)])
    assert all(o.ok for o in outcomes)
    assert snapshot_info() is None
