"""Batched dispatch: chunk auto-tuning and the per-chunk bookkeeping."""

import queue
import time
from collections import deque

from repro.farm import Executor, JobSpec
from repro.farm.executor import (MAX_CHUNK, TARGET_CHUNK_SECONDS, _Flight,
                                 _PoolState)
from tests.farm.test_races import FakeWorker, make_state

OK = [JobSpec.selftest(mode="ok", value=i) for i in range(40)]


class TestChunkSizing:
    def test_first_dispatch_is_one_job(self):
        # Nothing observed yet: stay at 1 so long jobs keep timeouts
        # and load balance fine-grained.
        executor = Executor(jobs=4)
        assert executor._chunk_size(100, 4) == 1

    def test_short_jobs_grow_the_chunk(self):
        executor = Executor(jobs=4)
        executor._observe(0.001)        # 1ms jobs
        assert executor._chunk_size(1000, 4) == MAX_CHUNK

    def test_long_jobs_keep_chunks_small(self):
        executor = Executor(jobs=4)
        executor._observe(2 * TARGET_CHUNK_SECONDS)
        assert executor._chunk_size(1000, 4) == 1

    def test_fair_share_caps_the_chunk(self):
        # 6 jobs over 4 workers: no worker may hoard more than
        # ceil(6/4) == 2, however fast the jobs are.
        executor = Executor(jobs=4)
        executor._observe(1e-6)
        assert executor._chunk_size(6, 4) == 2

    def test_ema_tracks_observations(self):
        executor = Executor(jobs=2)
        executor._observe(0.1)
        executor._observe(0.2)
        assert 0.1 < executor._job_seconds < 0.2

    def test_max_chunk_is_configurable(self):
        executor = Executor(jobs=2, max_chunk=4)
        executor._observe(1e-6)
        assert executor._chunk_size(1000, 2) == 4


class TestDispatch:
    def test_dispatch_packs_a_chunk_per_message(self):
        executor = Executor(jobs=2)
        executor._observe(1e-6)         # tiny jobs: chunks want to grow
        worker = FakeWorker(0)
        state = make_state(executor, OK[:10], flights={},
                           workers={0: worker})
        state.pending = deque((i, 1) for i in range(10))
        state.idle = [0]

        executor._dispatch(state)

        # ceil(10/1 worker) fair share exceeds MAX per... worker count
        # is len(state.workers) == 1 here, so fair share is 10.
        (message,) = worker.sent
        assert [index for index, _ in message] == list(range(10))
        assert state.flights[0].batch[0] == (0, 1)
        assert not state.pending

    def test_mid_chunk_result_rearms_the_deadline(self):
        executor = Executor(jobs=2, timeout=30.0)
        worker = FakeWorker(0)
        flight = _Flight(batch=deque([(0, 1), (1, 1)]),
                         deadline=time.monotonic() + 1.0,
                         begun=time.perf_counter())
        state = make_state(executor, OK[:2], flights={0: flight},
                           workers={0: worker})
        old_deadline = flight.deadline

        executor._handle_result(state, 0, 0, "ok", {"value": 0}, 0.01)

        assert state.outcomes[0].ok
        # The second job of the chunk is now the running head, with a
        # fresh full timeout.
        assert flight.batch[0] == (1, 1)
        assert flight.deadline > old_deadline
        assert 0 in state.flights       # flight lives until batch drains

        executor._handle_result(state, 0, 1, "ok", {"value": 1}, 0.01)
        assert state.outcomes[1].ok
        assert 0 not in state.flights
        assert state.idle == [0]

    def test_killed_chunk_requeues_unstarted_tail_unchanged(self):
        """Only the running head of a killed worker's chunk consumes an
        attempt; the tail never executed and requeues as it was."""
        # degrade_after=0 so the reap degrades instead of spawning a
        # real replacement process into the synthetic state.
        executor = Executor(jobs=2, timeout=30.0, retries=1,
                            degrade_after=0)
        worker = FakeWorker(0, alive=False)
        flight = _Flight(batch=deque([(0, 2), (1, 1), (2, 1)]),
                         deadline=time.monotonic() + 30,
                         begun=time.perf_counter())
        state = make_state(executor, OK[:3], flights={0: flight},
                          workers={0: worker})

        assert executor._reap(state) is True    # degraded

        assert worker.killed
        assert executor.stats.worker_deaths == 1
        # Head was on its final allowed attempt (attempt 2, retries=1),
        # so the death is recorded as its structured failure.
        assert state.outcomes[0] is not None
        assert not state.outcomes[0].ok
        assert state.outcomes[0].failure.kind == "worker-death"
        assert state.outcomes[0].wall_seconds > 0.0
        # The unstarted tail requeued in order with attempts unchanged.
        assert list(state.pending) == [(1, 1), (2, 1)]


class TestBatchedPoolEndToEnd:
    def test_many_tiny_jobs_complete_in_order(self):
        executor = Executor(jobs=2, timeout=60.0)
        outcomes = executor.run(OK)
        assert [o.payload["value"] for o in outcomes] == list(range(40))
        # The tuner saw real observations during the run.
        assert executor._job_seconds is not None

    def test_batched_and_serial_agree(self):
        serial = [o.payload for o in Executor(jobs=1).run(OK)]
        pooled = [o.payload for o in
                  Executor(jobs=3, timeout=60.0).run(OK)]
        assert ([p["value"] for p in pooled]
                == [p["value"] for p in serial])
