"""The executor: failure semantics a naive pool gets wrong.

Raising, hanging, and dying workers are all retried up to the bound and
then reported as structured failures in the right outcome slot; a
crash-looping pool degrades to serial execution instead of spinning; and
every step of the run narrates itself on the event bus.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.farm import Executor, JobSpec, ResultCache

OK = [JobSpec.selftest(mode="ok", value=i) for i in range(6)]


class TestHappyPath:
    def test_serial_runs_in_order(self):
        outcomes = Executor(jobs=1).run(OK)
        assert [o.payload["value"] for o in outcomes] == list(range(6))
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_pool_preserves_spec_order(self):
        outcomes = Executor(jobs=3, timeout=30.0).run(OK)
        assert [o.payload["value"] for o in outcomes] == list(range(6))

    def test_pool_jobs_run_in_worker_processes(self):
        outcomes = Executor(jobs=2, timeout=30.0).run(OK[:4])
        pids = {o.payload["pid"] for o in outcomes}
        assert os.getpid() not in pids

    def test_serial_runs_in_this_process(self):
        (outcome,) = Executor(jobs=1).run(OK[:1])
        assert outcome.payload["pid"] == os.getpid()

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            Executor(jobs=0)
        with pytest.raises(ConfigurationError):
            Executor(jobs=1, retries=-1)


class TestFailureSemantics:
    def test_raising_job_retries_to_the_bound(self):
        (outcome,) = Executor(jobs=1, retries=2).run(
            [JobSpec.selftest(mode="raise", value="boom")])
        assert not outcome.ok
        assert outcome.failure.kind == "exception"
        assert outcome.failure.attempts == 3          # 1 try + 2 retries
        assert "RuntimeError" in outcome.failure.message

    def test_pool_raising_job_fails_structurally(self):
        executor = Executor(jobs=2, retries=1, timeout=30.0)
        bad, good = executor.run([JobSpec.selftest(mode="raise"),
                                  JobSpec.selftest(mode="ok", value=5)])
        assert not bad.ok and bad.failure.attempts == 2
        assert good.ok and good.payload["value"] == 5
        assert executor.stats.retries == 1

    def test_flaky_job_recovers_on_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        (outcome,) = Executor(jobs=1, retries=1).run(
            [JobSpec.selftest(mode="flaky", path=marker)])
        assert outcome.ok and outcome.attempts == 2
        assert outcome.payload["value"] == "recovered"

    def test_hanging_job_times_out(self):
        executor = Executor(jobs=2, timeout=0.3, retries=0)
        slow, fast = executor.run(
            [JobSpec.selftest(mode="hang", seconds=60.0),
             JobSpec.selftest(mode="ok", value=1)])
        assert not slow.ok and slow.failure.kind == "timeout"
        assert fast.ok
        assert executor.stats.worker_deaths == 1

    def test_dying_worker_is_reported_and_replaced(self):
        executor = Executor(jobs=2, retries=0, timeout=30.0)
        dead, live = executor.run([JobSpec.selftest(mode="die"),
                                   JobSpec.selftest(mode="ok", value=2)])
        assert not dead.ok and dead.failure.kind == "worker-death"
        assert live.ok and live.payload["value"] == 2

    def test_crash_loop_degrades_to_serial(self):
        executor = Executor(jobs=2, retries=0, timeout=30.0,
                            degrade_after=0)
        specs = [JobSpec.selftest(mode="die")] + OK[:3]
        outcomes = executor.run(specs)
        assert executor.stats.degraded
        assert not outcomes[0].ok
        # The survivors all completed — nothing was dropped when the
        # pool was abandoned.  (Whether a given survivor ran in a
        # worker or in the parent depends on how fast the workers were;
        # the contract is completeness, not placement.)
        values = [o.payload["value"] for o in outcomes[1:]]
        assert values == [0, 1, 2]


class TestWallTimeAccounting:
    def test_failed_job_records_real_wall_time(self):
        # Regression: _fail never threaded elapsed time, so every
        # failure reported wall_seconds=0.0.
        (outcome,) = Executor(jobs=1, retries=0).run(
            [JobSpec.selftest(mode="raise")])
        assert not outcome.ok
        assert outcome.wall_seconds > 0.0

    def test_timed_out_job_records_the_time_it_burned(self):
        executor = Executor(jobs=2, timeout=0.3, retries=0)
        (outcome,) = executor.run([JobSpec.selftest(mode="hang",
                                                    seconds=60.0)])
        assert not outcome.ok and outcome.failure.kind == "timeout"
        assert outcome.wall_seconds >= 0.3

    def test_pool_failure_records_worker_side_wall_time(self):
        executor = Executor(jobs=2, retries=0, timeout=30.0)
        (outcome,) = executor.run([JobSpec.selftest(mode="raise")])
        assert not outcome.ok
        assert outcome.wall_seconds > 0.0


class TestDegradedAttemptAccounting:
    def test_killed_in_flight_attempt_is_counted(self):
        # Regression: degradation used to requeue in-flight jobs with
        # their old attempt number, so the killed pool attempt never
        # showed in JobOutcome.attempts and the serial farm-start event
        # repeated the same attempt number.
        executor = Executor(jobs=2, retries=0, timeout=30.0,
                            degrade_after=0)
        executor.bus.enable()
        events = []
        executor.bus.subscribe(lambda e: events.append(e))
        outcomes = executor.run([JobSpec.selftest(mode="die"),
                                 JobSpec.selftest(mode="spin",
                                                  seconds=0.8, value=5)])
        assert executor.stats.degraded
        assert not outcomes[0].ok
        survivor = outcomes[1]
        assert survivor.ok and survivor.payload["value"] == 5
        # The pool attempt that was killed at degradation counts.
        assert survivor.attempts == 2
        # Narrated as a degraded retry, and the serial re-execution
        # starts with the *incremented* attempt number.
        retries = [e for e in events if e.kind == "farm-retry"
                   and e.detail["job"] == 1]
        assert retries and retries[-1].detail["reason"] == "degraded"
        starts = [e.detail["attempt"] for e in events
                  if e.kind == "farm-start" and e.detail["job"] == 1]
        assert starts == [1, 2]


class TestEventsAndCache:
    def test_the_bus_narrates_the_run(self, tmp_path):
        executor = Executor(jobs=1, retries=1,
                            cache=ResultCache(tmp_path))
        executor.bus.enable()
        kinds = []
        executor.bus.subscribe(lambda event: kinds.append(event.kind))
        marker = str(tmp_path / "marker")
        specs = [JobSpec.selftest(mode="ok", value=1),
                 JobSpec.selftest(mode="flaky", path=marker),
                 JobSpec.selftest(mode="raise")]
        executor.run(specs)
        for expected in ("farm-queued", "farm-start", "farm-done",
                         "farm-retry", "farm-failure", "farm-complete"):
            assert expected in kinds, expected
        executor.run([specs[0]])
        assert "farm-cache-hit" in kinds

    def test_cached_outcomes_cost_no_attempts(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.selftest(mode="ok", value=9)
        first_exec = Executor(jobs=1, cache=cache)
        (first,) = first_exec.run([spec])
        (again,) = Executor(jobs=1, cache=cache).run([spec])
        assert not first.cache_hit
        assert again.cache_hit and again.attempts == 0
        assert again.payload == first.payload
