"""Deterministic coverage of the pool loop's race-ordering contracts.

The real pool exercises these paths only under timing accidents: a
worker ships its result in the same scheduling window the parent
declares it hung or dead, or a replaced worker's leftover result
arrives after its flight was torn down.  Here the loop's pieces —
``_drain``, ``_reap``, ``_handle_result`` — run against synthetic
:class:`_PoolState` with hand-loaded queues and fake workers, so every
race resolves the same way on every run:

* **drain before judgment** — work that finished is counted even if its
  worker's deadline passed or its process died in the meantime; the
  result queue is the source of truth;
* **stale results are discarded** — a result whose flight no longer
  exists (replaced worker) or whose index is not the running head of
  its flight mutates nothing.
"""

import queue
import time
from collections import deque

from repro.farm import Executor, JobSpec
from repro.farm.executor import _Flight, _PoolState


class FakeProc:
    def __init__(self, alive: bool):
        self._alive = alive

    def is_alive(self) -> bool:
        return self._alive


class FakeWorker:
    """Stands in for _Worker: liveness + a recording task queue."""

    def __init__(self, wid: int, alive: bool = True):
        self.wid = wid
        self.proc = FakeProc(alive)
        self.killed = False
        self.sent: list = []
        self.task_q = self

    def put(self, message) -> None:     # the task_q interface
        self.sent.append(message)

    def kill(self) -> None:
        self.killed = True


def make_state(executor: Executor, specs, flights: dict,
               workers: dict) -> _PoolState:
    outcomes = [None] * len(specs)
    state = _PoolState(specs, deque(), outcomes, queue.Queue())
    state.flights = flights
    state.workers = workers
    state.next_wid = max(workers, default=-1) + 1
    return state


def test_result_racing_a_timeout_still_counts():
    """The job's deadline passed, but its result is already queued:
    drain runs before reap, so the job completes — no retry, no kill."""
    executor = Executor(jobs=2, timeout=5.0)
    specs = [JobSpec.selftest(mode="ok", value=7)]
    worker = FakeWorker(0, alive=True)
    expired = time.monotonic() - 10.0           # long past its deadline
    state = make_state(executor, specs,
                       flights={0: _Flight(batch=deque([(0, 1)]),
                                           deadline=expired,
                                           begun=time.perf_counter())},
                       workers={0: worker})
    state.result_q.put((0, 0, "ok", {"value": 7}, 0.01))

    executor._drain(state)
    assert executor._reap(state) is False

    outcome = state.outcomes[0]
    assert outcome is not None and outcome.ok
    assert outcome.payload == {"value": 7}
    assert outcome.attempts == 1
    assert executor.stats.worker_deaths == 0
    assert not worker.killed
    assert not state.pending                    # nothing was requeued


def test_result_racing_a_worker_death_still_counts():
    """The worker shipped its result and then died: the drained result
    completes the job; the dead-but-finished worker costs nothing."""
    executor = Executor(jobs=2, timeout=30.0)
    specs = [JobSpec.selftest(mode="ok", value=3)]
    worker = FakeWorker(0, alive=False)         # already dead
    state = make_state(executor, specs,
                       flights={0: _Flight(batch=deque([(0, 1)]),
                                           deadline=time.monotonic() + 30,
                                           begun=time.perf_counter())},
                       workers={0: worker})
    state.result_q.put((0, 0, "ok", {"value": 3}, 0.02))

    executor._drain(state)
    # The flight resolved on drain, so reap finds nothing to judge: the
    # death is only observable once the worker has another flight.
    assert executor._reap(state) is False

    outcome = state.outcomes[0]
    assert outcome is not None and outcome.ok and outcome.attempts == 1
    assert executor.stats.worker_deaths == 0
    assert not state.pending


def test_stale_result_from_replaced_worker_is_discarded():
    """A result from a worker whose flight was torn down (it was killed
    and replaced; the job was requeued) must mutate nothing — the job's
    live attempt owns the outcome slot."""
    executor = Executor(jobs=2, timeout=30.0)
    specs = [JobSpec.selftest(mode="ok", value=v) for v in range(3)]
    live = FakeWorker(1, alive=True)
    state = make_state(executor, specs,
                       flights={1: _Flight(batch=deque([(2, 1)]),
                                           deadline=time.monotonic() + 30,
                                           begun=time.perf_counter())},
                       workers={1: live})
    # wid 0 was replaced: no flight entry at all.
    state.result_q.put((0, 0, "ok", {"value": 0}, 0.01))
    # wid 1 reports an index that is not its running head (a leftover
    # from a batch the parent already requeued).
    state.result_q.put((1, 5, "ok", {"value": 99}, 0.01))

    executor._drain(state)

    assert state.outcomes == [None, None, None]
    assert not state.pending
    # The live flight is untouched and still waiting on its real head.
    assert state.flights[1].batch[0] == (2, 1)


def test_stale_error_result_is_discarded_too():
    """The stale filter applies to error results as well: a dead
    attempt's exception must not burn the live attempt's retries."""
    executor = Executor(jobs=2, timeout=30.0, retries=0)
    specs = [JobSpec.selftest(mode="ok", value=1)]
    state = make_state(executor, specs, flights={}, workers={})
    state.result_q.put((4, 0, "error",
                        {"type": "RuntimeError", "message": "stale",
                         "traceback": ""}, 0.01))

    executor._drain(state)

    assert state.outcomes == [None]
    assert executor.stats.retries == 0
