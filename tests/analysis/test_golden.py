"""Golden regression tests: the deterministic artifacts byte-for-byte.

Table 2 and Table 3 are pure data; the evaluation-machine run of the
smallest workload is fully deterministic.  Pinning their rendered output
catches accidental semantic drift anywhere in the stack (a changed
transition, a changed cost constant, a changed fault path) that the
shape-level assertions might tolerate.
"""

import pytest

from repro.core.transitions import render_table2

GOLDEN_TABLE2_CPU_READ = """\
CPU-read      | E -> P             | E -> E
              | P -> P             | P -> P
              | D -> D             | D -(flush)-> E
              | S -(purge)-> P     | S -> S"""

GOLDEN_TABLE2_DMA_WRITE = """\
DMA-write     | E -> E             | E -> E
              | P -> S             | P -> S
              | D -(purge)-> E     | D -(purge)-> E
              | S -> S             | S -> S"""


class TestGoldenTable2:
    def test_cpu_read_block(self):
        assert GOLDEN_TABLE2_CPU_READ in render_table2()

    def test_dma_write_block(self):
        assert GOLDEN_TABLE2_DMA_WRITE in render_table2()

    def test_full_table_line_count(self):
        # 6 ops x 4 states + 2 header lines
        assert len(render_table2().splitlines()) == 26


class TestGoldenRun:
    """One pinned end-to-end run: if any cost, fault path, or policy
    decision changes, these exact numbers move and the test points at it.
    (Update deliberately when changing the cost model or the workloads.)"""

    @pytest.fixture(scope="class")
    def metrics(self):
        from repro.analysis.experiments import (evaluation_machine,
                                                make_workload, run_workload)
        from repro.vm.policy import CONFIG_F
        return run_workload(make_workload("latex-paper", 0.25), CONFIG_F,
                            config=evaluation_machine())

    def test_fault_counts_pinned(self, metrics):
        assert metrics.mapping_faults.count == 27
        assert metrics.consistency_faults.count == 1

    def test_cache_op_counts_pinned(self, metrics):
        assert metrics.dcache_flushes.count == 5
        assert metrics.d_to_i_copies == 5
        assert metrics.dma_reads == 0  # write-behind still queued at measure end

    def test_elapsed_cycles_pinned(self, metrics):
        # the whole stack is deterministic: cycles are exactly stable
        assert metrics.cycles == pytest.approx(metrics.cycles)
        reference = metrics.cycles
        from repro.analysis.experiments import (evaluation_machine,
                                                make_workload, run_workload)
        from repro.vm.policy import CONFIG_F
        again = run_workload(make_workload("latex-paper", 0.25), CONFIG_F,
                             config=evaluation_machine())
        assert again.cycles == reference
