"""Golden-trace regression tests: the consistency event stream of each
paper workload is pinned, event for event, to an artifact under
tests/golden/.  A behaviour change that moves even one flush shows up as
a diff naming the first diverging event.

Regenerate after an *intended* change with::

    python -m repro trace <workload> --out tests/golden/<workload>.jsonl
"""

from pathlib import Path

import pytest

from repro.analysis.experiments import (evaluation_machine, make_workload,
                                        run_workload)
from repro.analysis.trace import TraceDiff, TraceEvent, Tracer, diff_traces
from repro.cli import main
from repro.kernel.kernel import Kernel
from repro.vm.policy import NEW_SYSTEM

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
WORKLOAD_NAMES = ("afs-bench", "latex-paper", "kernel-build")
GOLDEN_SCALE = 0.25


def record_trace(name: str) -> Tracer:
    kernel = Kernel(policy=NEW_SYSTEM, config=evaluation_machine(),
                    buffer_cache_pages=48)
    with Tracer(kernel) as tracer:
        run_workload(make_workload(name, GOLDEN_SCALE), NEW_SYSTEM,
                     kernel=kernel)
    return tracer


class TestDiffTraces:
    E1 = {"seq": 0, "cycles": 10, "kind": "flush", "frame": 3}
    E2 = {"seq": 1, "cycles": 20, "kind": "purge", "frame": 4}

    def test_identical_traces_have_no_diff(self):
        assert diff_traces([self.E1, self.E2], [self.E1, self.E2]) is None

    def test_first_divergence_is_pinpointed(self):
        changed = dict(self.E2, frame=9)
        diff = diff_traces([self.E1, self.E2], [self.E1, changed])
        assert diff is not None
        assert diff.index == 1
        assert diff.expected["frame"] == 4
        assert diff.actual["frame"] == 9
        assert "first divergence at event 1" in diff.render()

    def test_short_trace_diverges_at_its_end(self):
        diff = diff_traces([self.E1, self.E2], [self.E1])
        assert diff == TraceDiff(1, self.E2, None)
        assert "<trace ends>" in diff.render()

    def test_long_trace_diverges_past_the_golden_end(self):
        diff = diff_traces([self.E1], [self.E1, self.E2])
        assert diff.index == 1
        assert diff.expected is None

    def test_trace_events_and_dicts_compare_interchangeably(self):
        event = TraceEvent(0, 10, "flush", {"frame": 3})
        assert diff_traces([self.E1], [event]) is None


class TestGoldenArtifacts:
    def test_goldens_exist_for_every_workload(self):
        for name in WORKLOAD_NAMES:
            assert (GOLDEN_DIR / f"{name}.jsonl").is_file()

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_matches_its_golden_trace(self, name):
        golden = Tracer.load_jsonl(GOLDEN_DIR / f"{name}.jsonl")
        tracer = record_trace(name)
        diff = diff_traces(golden, tracer.events)
        assert diff is None, f"{name}: {diff.render()}"
        assert len(tracer.events) == len(golden) > 0


@pytest.mark.conform
class TestTraceCli:
    def test_diff_against_golden_matches(self, capsys):
        assert main(["trace", "latex-paper",
                     "--diff", str(GOLDEN_DIR / "latex-paper.jsonl")]) == 0
        assert "trace matches" in capsys.readouterr().out

    def test_diff_mismatch_pinpoints_the_event_and_exits_nonzero(
            self, capsys):
        # A different scale produces a genuinely different run.
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "latex-paper", "--scale", "0.5",
                  "--diff", str(GOLDEN_DIR / "latex-paper.jsonl")])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "DIVERGES" in out
        assert "first divergence at event" in out

    def test_out_writes_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(["trace", "latex-paper", "--out", str(out_file)]) == 0
        events = Tracer.load_jsonl(out_file)
        assert events and all("kind" in e for e in events)
