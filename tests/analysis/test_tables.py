"""Tests for the table renderers (format-level, on synthetic metrics)."""

import pytest

from repro.analysis.experiments import Table1Row
from repro.analysis.metrics import OpCost, RunMetrics
from repro.analysis.tables import (render_micro, render_overhead_summary,
                                   render_table1, render_table4)
from repro.workloads.microbench import AliasLoopResult


def metrics(config="F", workload="afs-bench", seconds=1.0, cycles=50_000_000,
            **overrides):
    fields = dict(
        config_name=config, workload_name=workload, cycles=cycles,
        seconds=seconds,
        mapping_faults=OpCost(10, 3000),
        consistency_faults=OpCost(2, 600),
        dcache_flushes=OpCost(5, 500), dcache_purges=OpCost(4, 400),
        icache_flushes=OpCost(0, 0), icache_purges=OpCost(1, 128),
        dma_read_flushes=OpCost(3, 300), d_to_i_flushes=OpCost(2, 200),
        new_mapping_purges=OpCost(2, 200), dma_write_purges=OpCost(1, 100),
        d_to_i_icache_purges=OpCost(1, 128),
        dma_reads=3, dma_writes=2, d_to_i_copies=2, ipc_page_moves=7,
        pages_zero_filled=4, pages_copied=3,
    )
    fields.update(overrides)
    return RunMetrics(**fields)


class TestTable1Renderer:
    def test_gain_computation(self):
        row = Table1Row("afs-bench", metrics(config="A", seconds=2.0),
                        metrics(config="F", seconds=1.5))
        assert row.gain_percent == pytest.approx(25.0)

    def test_rendering_includes_paper_reference(self):
        rows = [Table1Row("afs-bench", metrics(config="A", seconds=2.0),
                          metrics(config="F", seconds=1.8))]
        text = render_table1(rows)
        assert "10.0%" in text          # the paper's gain for afs-bench
        assert "afs-bench" in text


class TestTable4Renderer:
    def test_one_row_per_config(self):
        ladder = [metrics(config=c) for c in "ABCDEF"]
        text = render_table4({"afs-bench": ladder})
        for name in "ABCDEF":
            assert f"\n  {name}  " in text

    def test_average_cycles_shown(self):
        text = render_table4({"w": [metrics()]})
        assert "100" in text            # 500 cycles / 5 flushes


class TestOverheadSummary:
    def test_accounting_identity(self):
        m = metrics()
        text = render_overhead_summary([m])
        # VI overhead: cons fault cycles (600) + non-DMA purges (400-100)
        assert f"{600 + 300:>10}" in text or "900" in text
        assert "virtually-indexed-cache overhead" in text

    def test_fraction_of_total(self):
        m = metrics(cycles=100_000)
        text = render_overhead_summary([m])
        assert "0.900%" in text


class TestMicroRenderer:
    def test_slowdown_factor(self):
        aligned = AliasLoopResult(True, 100, 1_000, 2e-5, 0, 0, 0)
        unaligned = AliasLoopResult(False, 100, 100_000, 2e-3, 98, 99, 98)
        text = render_micro(aligned, unaligned)
        assert "100x" in text
        assert "fraction of a second" in text
