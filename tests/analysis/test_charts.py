"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.charts import (render_comparison_chart,
                                   render_ladder_chart)
from repro.analysis.experiments import run_table4


@pytest.fixture(scope="module")
def ladder():
    return run_table4(scale=0.25, workload_names=("latex-paper",))[
        "latex-paper"]


class TestLadderChart:
    def test_contains_every_configuration(self, ladder):
        chart = render_ladder_chart(ladder)
        for name in "ABCDEF":
            assert f"\n  {name} " in "\n" + chart

    def test_longest_bar_is_the_slowest_config(self, ladder):
        chart = render_ladder_chart(ladder)
        time_lines = [line for line in chart.splitlines()
                      if "s |" in line]
        slowest = max(ladder, key=lambda m: m.seconds)
        slowest_line = next(line for line in time_lines
                            if line.strip().startswith(slowest.config_name))
        longest = max(line.count("#") for line in time_lines)
        assert slowest_line.count("#") == longest  # ties allowed

    def test_ops_chart_marks_flush_and_purge(self, ladder):
        chart = render_ladder_chart(ladder)
        assert "(F = flushes, P = purges)" in chart

    def test_custom_title(self, ladder):
        assert render_ladder_chart(ladder, "hello").startswith("hello")

    def test_empty_input(self):
        assert render_ladder_chart([]) == "(no data)"


class TestComparisonChart:
    def test_bars_scale_with_values(self):
        chart = render_comparison_chart(["a", "b"], [10.0, 40.0], "t")
        line_a, line_b = chart.splitlines()[1:]
        assert line_b.count("#") == 4 * line_a.count("#")

    def test_unit_rendered(self):
        chart = render_comparison_chart(["x"], [1.0], "t", unit="ms")
        assert "ms" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_comparison_chart(["a"], [1.0, 2.0], "t")

    def test_zero_values(self):
        chart = render_comparison_chart(["a"], [0.0], "t")
        assert "#" not in chart
