"""Tests for the parameter-sweep harness."""

import pytest

from repro.analysis.sweep import (machine_with_dcache, render_sweep,
                                  sweep_cache_sizes)
from repro.vm.policy import CONFIG_F


class TestSweep:
    def test_machine_sizing(self):
        config = machine_with_dcache(64)
        assert config.dcache.size == 64 * 1024
        assert config.icache.size == 32 * 1024

    def test_sweep_produces_one_point_per_size(self):
        points = sweep_cache_sizes("latex-paper", CONFIG_F,
                                   sizes_kib=(32, 256), scale=0.25)
        assert [p.dcache_kib for p in points] == [32, 256]
        for point in points:
            assert point.metrics.cycles > 0

    def test_render(self):
        points = sweep_cache_sizes("latex-paper", CONFIG_F,
                                   sizes_kib=(64,), scale=0.25)
        text = render_sweep({"F": points}, "latex-paper")
        assert "64Ki" in text
        assert "latex-paper" in text
