"""Tests for the event tracer."""

import pytest

from repro.analysis.trace import Tracer
from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.vm.policy import CONFIG_B, CONFIG_F


def make_kernel(policy=CONFIG_F):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=128))


class TestRecording:
    def test_records_faults_flushes_and_dma(self):
        kernel = make_kernel(CONFIG_B)   # unaligned: plenty of activity
        with Tracer(kernel) as tracer:
            kernel.fs.create("/f", size_pages=1, on_disk=True)
            proc = UserProcess(kernel, "p")
            fd = proc.open("/f")
            proc.read_file_page(fd, 0)
            proc.close(fd)
            kernel.shutdown()
        summary = tracer.summary()
        assert summary.get("fault", 0) > 0
        assert summary.get("dma-write", 0) >= 1   # the disk read
        assert summary.get("flush", 0) >= 1

    def test_fault_classification_recorded(self):
        kernel = make_kernel(CONFIG_B)
        with Tracer(kernel) as tracer:
            proc = UserProcess(kernel, "p")
            vpage = proc.task.allocate_anon(1)
            proc.task.write(vpage, 0, 1)
        faults = tracer.filter("fault")
        assert faults
        assert any(f.detail["classified"] == "mapping" for f in faults)

    def test_events_are_ordered_and_timestamped(self):
        kernel = make_kernel()
        with Tracer(kernel) as tracer:
            proc = UserProcess(kernel, "p")
            proc.touch_memory(2)
        seqs = [e.seq for e in tracer.events]
        cycles = [e.cycles for e in tracer.events]
        assert seqs == sorted(seqs)
        assert cycles == sorted(cycles)

    def test_reason_breakdown_in_summary(self):
        kernel = make_kernel(CONFIG_B)
        with Tracer(kernel) as tracer:
            proc = UserProcess(kernel, "p")
            vpage = proc.task.allocate_anon(1)
            proc.task.write(vpage, 0, 1)
            frame = kernel.pmap.page_table(proc.task.asid).lookup(vpage).ppage
            kernel.disk.write_block(5, 0, frame)
        summary = tracer.summary()
        assert summary.get("flush:dma-read", 0) == 1


class TestNonInterference:
    def test_tracing_does_not_change_behaviour(self):
        def run(traced):
            kernel = make_kernel()
            tracer = Tracer(kernel)
            if traced:
                tracer.attach()
            proc = UserProcess(kernel, "p")
            proc.create("/f")
            fd = proc.open("/f")
            proc.write_file_page(fd, 0)
            proc.close(fd)
            kernel.shutdown()
            return (kernel.machine.clock.cycles,
                    kernel.machine.counters.snapshot())

        assert run(False) == run(True)

    def test_detach_restores_plumbing(self):
        kernel = make_kernel()
        tracer = Tracer(kernel).attach()
        tracer.detach()
        proc = UserProcess(kernel, "p")
        proc.touch_memory(1)
        assert tracer.events == [] or all(
            e.cycles <= tracer.events[-1].cycles for e in tracer.events)
        # nothing recorded after detach
        count = len(tracer.events)
        proc.touch_memory(1)
        assert len(tracer.events) == count

    def test_attach_is_idempotent(self):
        kernel = make_kernel()
        tracer = Tracer(kernel)
        assert tracer.attach() is tracer.attach()
        tracer.detach()


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        kernel = make_kernel(CONFIG_B)
        with Tracer(kernel) as tracer:
            proc = UserProcess(kernel, "p")
            proc.touch_memory(2)
        path = tmp_path / "trace.jsonl"
        written = tracer.to_jsonl(path)
        loaded = Tracer.load_jsonl(path)
        assert written == len(loaded) == len(tracer.events)
        assert loaded[0]["kind"] == tracer.events[0].kind

    def test_frames_touched(self):
        kernel = make_kernel(CONFIG_B)
        with Tracer(kernel) as tracer:
            proc = UserProcess(kernel, "p")
            vpage = proc.task.allocate_anon(1)
            proc.task.write(vpage, 0, 1)
            frame = kernel.pmap.page_table(proc.task.asid).lookup(vpage).ppage
            kernel.disk.write_block(5, 0, frame)
        assert frame in tracer.frames_touched()
