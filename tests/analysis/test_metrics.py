"""Tests for metric snapshotting and differencing."""

from repro.analysis.metrics import OpCost, diff_metrics, snapshot_counters
from repro.hw.params import CostModel
from repro.hw.stats import Counters, FaultKind, Reason


class TestOpCost:
    def test_avg(self):
        assert OpCost(4, 100).avg_cycles == 25.0

    def test_avg_of_nothing_is_zero(self):
        assert OpCost(0, 0).avg_cycles == 0.0


class TestDiffing:
    def test_diff_isolates_the_measured_window(self):
        counters = Counters()
        counters.record_flush("dcache", Reason.DMA_READ, 100)
        before = snapshot_counters(counters)
        counters.record_flush("dcache", Reason.DMA_READ, 60)
        counters.record_purge("dcache", Reason.NEW_MAPPING, 30)
        counters.record_fault(FaultKind.CONSISTENCY, 300)
        after = snapshot_counters(counters)
        metrics = diff_metrics("F", "test", before, after, cycles=1000,
                               cost=CostModel())
        assert metrics.dma_read_flushes == OpCost(1, 60)
        assert metrics.new_mapping_purges == OpCost(1, 30)
        assert metrics.consistency_faults.count == 1
        assert metrics.mapping_faults.count == 0

    def test_snapshot_is_immutable_copy(self):
        counters = Counters()
        snap = snapshot_counters(counters)
        counters.record_fault(FaultKind.MAPPING, 10)
        assert snap["faults"][FaultKind.MAPPING] == 0

    def test_overhead_accounting(self):
        counters = Counters()
        before = snapshot_counters(counters)
        counters.record_purge("dcache", Reason.NEW_MAPPING, 500)
        counters.record_purge("dcache", Reason.DMA_WRITE, 100)
        counters.record_fault(FaultKind.CONSISTENCY, 300)
        counters.record_flush("dcache", Reason.DMA_READ, 200)
        after = snapshot_counters(counters)
        metrics = diff_metrics("F", "test", before, after, cycles=100_000,
                               cost=CostModel())
        # VI overhead: consistency faults + non-DMA purging = 300 + 500
        assert metrics.consistency_overhead_cycles == 800
        # Architecture-independent: DMA flush + DMA purge = 200 + 100
        assert metrics.architecture_independent_cycles == 300
        assert metrics.consistency_overhead_fraction == 0.008

    def test_seconds_derived_from_cycles(self):
        metrics = diff_metrics("F", "t", snapshot_counters(Counters()),
                               snapshot_counters(Counters()),
                               cycles=50_000_000, cost=CostModel())
        assert metrics.seconds == 1.0
