"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "table2", "table4", "table5", "micro",
                        "run", "chaos", "conform", "trace", "all"):
            args = parser.parse_args(
                [command] + (["latex-paper"]
                             if command in ("run", "trace") else []))
            assert args.command == command

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonesuch"])


class TestCommands:
    def test_table2_prints_the_transition_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CPU-read" in out and "-(flush)->" in out

    def test_micro(self, capsys):
        assert main(["micro", "--iterations", "500"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_run_reports_counters(self, capsys):
        assert main(["run", "latex-paper", "--policy", "A",
                     "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "consistency faults" in out
        assert "configuration A" in out

    def test_run_accepts_table5_system_names(self, capsys):
        assert main(["run", "latex-paper", "--policy", "Tut",
                     "--scale", "0.25"]) == 0
        assert "Tut" in capsys.readouterr().out

    def test_table1_small_scale(self, capsys):
        assert main(["table1", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "afs-bench" in out and "kernel-build" in out

    def test_table4_single_workload(self, capsys):
        assert main(["table4", "--scale", "0.25",
                     "--workload", "latex-paper"]) == 0
        out = capsys.readouterr().out
        assert "latex-paper" in out
        assert "overhead" in out

    def test_table5(self, capsys):
        assert main(["table5", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "CMU" in out and "Sun" in out

    def test_table4_chart_flag(self, capsys):
        assert main(["table4", "--scale", "0.25",
                     "--workload", "latex-paper", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "(F = flushes, P = purges)" in out

    def test_run_conform_reports_the_shadow(self, capsys):
        assert main(["run", "latex-paper", "--scale", "0.25",
                     "--conform"]) == 0
        out = capsys.readouterr().out
        assert "conformance:" in out
        assert "no divergences" in out

    def test_conform_sweep_prints_coverage_and_verdict(self, capsys):
        assert main(["conform", "--sequences", "40"]) == 0
        out = capsys.readouterr().out
        assert "arc coverage:" in out
        assert "verdict: conforms to the Table 2 model" in out
        for name in ("afs-bench", "latex-paper", "kernel-build"):
            assert name in out

    def test_conform_mutant_demonstrates_detection(self, capsys):
        assert main(["conform", "--mutant", "skip-dma-read-flush",
                     "--sequences", "20"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "shrunk" in out
