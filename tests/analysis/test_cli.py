"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "table2", "table4", "table5", "micro",
                        "run", "chaos", "conform", "sweep", "farm",
                        "trace", "metrics", "profile", "all"):
            extra = (["latex-paper"]
                     if command in ("run", "trace", "profile")
                     else ["stats"] if command == "farm" else [])
            args = parser.parse_args([command] + extra)
            assert args.command == command

    def test_farm_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--sizes", "32,64", "--jobs", "4",
             "--cache-dir", "/tmp/c", "--no-cache",
             "--timeout", "30", "--trace-events", "ev.jsonl"])
        assert (args.jobs, args.cache_dir, args.no_cache) == \
               (4, "/tmp/c", True)
        assert args.timeout == 30.0 and args.trace_events == "ev.jsonl"

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonesuch"])


class TestCommands:
    def test_table2_prints_the_transition_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CPU-read" in out and "-(flush)->" in out

    def test_micro(self, capsys):
        assert main(["micro", "--iterations", "500"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_run_reports_counters(self, capsys):
        assert main(["run", "latex-paper", "--policy", "A",
                     "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "consistency faults" in out
        assert "configuration A" in out

    def test_run_accepts_table5_system_names(self, capsys):
        assert main(["run", "latex-paper", "--policy", "Tut",
                     "--scale", "0.25"]) == 0
        assert "Tut" in capsys.readouterr().out

    def test_table1_small_scale(self, capsys):
        assert main(["table1", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "afs-bench" in out and "kernel-build" in out

    def test_table4_single_workload(self, capsys):
        assert main(["table4", "--scale", "0.25",
                     "--workload", "latex-paper"]) == 0
        out = capsys.readouterr().out
        assert "latex-paper" in out
        assert "overhead" in out

    def test_table5(self, capsys):
        assert main(["table5", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "CMU" in out and "Sun" in out

    def test_table4_chart_flag(self, capsys):
        assert main(["table4", "--scale", "0.25",
                     "--workload", "latex-paper", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "(F = flushes, P = purges)" in out

    def test_run_conform_reports_the_shadow(self, capsys):
        assert main(["run", "latex-paper", "--scale", "0.25",
                     "--conform"]) == 0
        out = capsys.readouterr().out
        assert "conformance:" in out
        assert "no divergences" in out

    def test_conform_sweep_prints_coverage_and_verdict(self, capsys):
        assert main(["conform", "--sequences", "40"]) == 0
        out = capsys.readouterr().out
        assert "arc coverage:" in out
        assert "verdict: conforms to the Table 2 model" in out
        for name in ("afs-bench", "latex-paper", "kernel-build"):
            assert name in out

    def test_conform_mutant_demonstrates_detection(self, capsys):
        assert main(["conform", "--mutant", "skip-dma-read-flush",
                     "--sequences", "20"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "shrunk" in out


class TestObservabilityCommands:
    def test_metrics_json(self, capsys):
        assert main(["metrics", "--iterations", "500"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "counters" in data and "flushes" in data
        assert data["cycles"] > 0

    def test_metrics_prom_parses(self, capsys):
        from repro.obs import parse_prometheus

        assert main(["metrics", "--format", "prom",
                     "--iterations", "500"]) == 0
        samples = parse_prometheus(capsys.readouterr().out)
        assert samples[("repro_cycles_total", ())] > 0
        assert ("repro_write_misses_total", ()) in samples

    def test_metrics_workload(self, capsys):
        assert main(["metrics", "afs-bench", "--scale", "0.1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["dma_reads"] > 0

    def test_profile(self, capsys):
        assert main(["profile", "afs-bench", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution: afs-bench" in out
        assert "workload:afs-bench" in out
        assert "MISMATCH" not in out

    def test_run_trace_events(self, capsys, tmp_path):
        from repro.obs import load_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["run", "latex-paper", "--scale", "0.25",
                     "--trace-events", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace events:" in out and str(path) in out
        events = load_jsonl(path)
        assert events, "trace file is empty"
        kinds = {e["kind"] for e in events}
        assert "fault" in kinds

    def test_run_inject_conform_trace_combined(self, capsys, tmp_path):
        """Satellite: one invocation combining --inject, --conform and
        --trace-events; the injected divergence must surface as
        attributed trace events in the JSONL."""
        from repro.obs import load_jsonl

        path = tmp_path / "trace.jsonl"
        with pytest.raises(SystemExit) as exc:
            main(["run", "afs-bench", "--scale", "0.1",
                  "--inject", "pmap.flush.drop:0.3", "--seed", "3",
                  "--conform", "--trace-events", str(path)])
        assert exc.value.code == 1          # fail-stop, as designed
        out = capsys.readouterr().out
        assert "fail-stop after 1 injections" in out
        assert "trace events:" in out
        events = load_jsonl(path)
        injections = [e for e in events if e["kind"] == "injection"]
        divergences = [e for e in events if e["kind"] == "divergence"]
        assert len(injections) == 1
        assert injections[0]["point"] == "pmap.flush.drop"
        assert divergences, "injected divergence never became an event"
        # the divergence is attributed: it names the frame and carries
        # the simulated-cycle timestamp of the moment it was detected
        assert "frame" in divergences[0]
        assert divergences[0]["cycles"] >= injections[0]["cycles"]
