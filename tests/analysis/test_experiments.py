"""Tests for the experiment harness: the paper's shape claims hold.

These are the assertions behind EXPERIMENTS.md: not absolute numbers, but
orderings and rough factors.
"""

import pytest

from repro.analysis.comparison import render_table5, table5_matrix
from repro.analysis.experiments import (evaluation_machine, run_alignment_micro,
                                        run_table1, run_table4,
                                        run_table5_probe, run_workload,
                                        make_workload)
from repro.analysis.tables import (render_micro, render_overhead_summary,
                                   render_table1, render_table4)
from repro.vm.policy import CONFIG_LADDER

SCALE = 0.25


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(scale=SCALE)


@pytest.fixture(scope="module")
def table4_results():
    return run_table4(scale=SCALE, workload_names=("kernel-build",))


class TestTable1Shape:
    def test_new_system_wins_every_benchmark(self, table1_rows):
        for row in table1_rows:
            assert row.new.seconds < row.old.seconds

    def test_gains_in_the_papers_band(self, table1_rows):
        # Paper: 5% to 10%.  Allow a generous band around it.
        for row in table1_rows:
            assert 2.0 < row.gain_percent < 30.0

    def test_flushes_and_purges_collapse(self, table1_rows):
        for row in table1_rows:
            assert row.new.page_flushes < row.old.page_flushes / 3

    def test_render(self, table1_rows):
        text = render_table1(table1_rows)
        assert "afs-bench" in text and "kernel-build" in text


class TestTable4Shape:
    def test_six_configs_per_benchmark(self, table4_results):
        for metrics in table4_results.values():
            assert [m.config_name for m in metrics] == list("ABCDEF")

    def test_elapsed_time_never_increases_much_down_the_ladder(
            self, table4_results):
        for metrics in table4_results.values():
            times = [m.seconds for m in metrics]
            for earlier, later in zip(times, times[1:]):
                assert later <= earlier * 1.05

    def test_mapping_faults_constant_once_lazy(self, table4_results):
        # Section 5.1: "mapping faults remain almost constant across
        # configurations" — among the lazy configs B..F, which share the
        # fault structure; A converts many consistency faults into
        # re-mapping faults by breaking mappings.
        for metrics in table4_results.values():
            lazy = [m.mapping_faults.count for m in metrics[1:]]
            assert max(lazy) - min(lazy) <= max(lazy) * 0.1

    def test_consistency_faults_drop_substantially(self, table4_results):
        for metrics in table4_results.values():
            assert (metrics[-1].consistency_faults.count
                    <= metrics[1].consistency_faults.count / 5)

    def test_need_data_trades_flushes_for_purges(self, table4_results):
        # D -> E: "the decrease in data cache flushes is offset by an
        # equivalent increase in data cache purges".
        for metrics in table4_results.values():
            d, e = metrics[3], metrics[4]
            flush_drop = d.dcache_flushes.count - e.dcache_flushes.count
            purge_rise = e.dcache_purges.count - d.dcache_purges.count
            assert flush_drop > 0
            assert abs(purge_rise - flush_drop) <= max(3, flush_drop * 0.3)

    def test_final_config_flushes_are_dma_and_d2i_only(self, table4_results):
        # Section 5.1: "the number of page flushes is equal to the number
        # of DMA-read flushes plus the number of pages copied from data
        # space into instruction space."
        for metrics in table4_results.values():
            final = metrics[-1]
            assert final.dcache_flushes.count == (
                final.dma_read_flushes.count + final.d_to_i_flushes.count)

    def test_overhead_is_a_small_fraction(self, table4_results):
        # Paper: 0.22% for F; we only require "well under a few percent".
        for metrics in table4_results.values():
            assert metrics[-1].consistency_overhead_fraction < 0.05

    def test_render(self, table4_results):
        text = render_table4(table4_results)
        assert "kernel-build" in text
        summary = render_overhead_summary(
            [metrics[-1] for metrics in table4_results.values()])
        assert "virtually-indexed-cache overhead" in summary


class TestMicrobenchShape:
    def test_alignment_three_orders_of_magnitude(self):
        aligned, unaligned = run_alignment_micro(iterations=1000)
        assert unaligned.cycles > 100 * aligned.cycles
        text = render_micro(aligned, unaligned)
        assert "slowdown" in text


class TestTable5:
    def test_matrix_matches_paper_claims(self):
        matrix = {t.name: t for t in table5_matrix()}
        assert matrix["CMU"].lazy_unmap and matrix["CMU"].exploits_need_data
        assert not matrix["Utah"].lazy_unmap
        assert matrix["Tut"].lazy_unmap
        assert matrix["Tut"].state_granularity == "virtual address"
        assert matrix["Sun"].state_granularity == "none (eager)"

    def test_probe_measurements(self):
        measurements = run_table5_probe(scale=SCALE)
        by_name = {m.config_name: m for m in measurements}
        # CMU performs the least cache management on the probe.
        for other in ("Utah", "Apollo", "Sun"):
            assert (by_name["CMU"].page_flushes
                    < by_name[other].page_flushes)
        text = render_table5(measurements)
        assert "CMU" in text and "Measured" in text


class TestHarness:
    def test_make_workload_names(self):
        for name in ("afs-bench", "latex-paper", "kernel-build"):
            assert make_workload(name, 0.25).name == name

    def test_run_workload_reports_config(self):
        metrics = run_workload(make_workload("latex-paper", SCALE),
                               CONFIG_LADDER[-1])
        assert metrics.config_name == "F"
        assert metrics.cycles > 0

    def test_evaluation_machine_overridable(self):
        config = evaluation_machine(phys_pages=64)
        assert config.phys_pages == 64
