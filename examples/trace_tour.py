#!/usr/bin/env python3
"""Watching the machinery: trace one file read, end to end.

The tracer records every consistency-relevant event — faults with their
classification, flushes and purges with their reason, DMA transfers —
without changing the run.  This example traces a single `read()` syscall
on a cold file under the unaligned configuration B and under the fully
aligned configuration F, and prints both traces side by side: the whole
paper in about fifteen lines of events.

Run:  python examples/trace_tour.py
"""

from repro import Kernel, MachineConfig, by_name
from repro.analysis.trace import Tracer
from repro.kernel.process import UserProcess


def trace_one_read(policy_name: str) -> Tracer:
    kernel = Kernel(policy=by_name(policy_name),
                    config=MachineConfig(phys_pages=128))
    kernel.fs.create("/data/file", size_pages=1, on_disk=True)
    UserProcess(kernel, "init")   # occupy the first channel slot, which
    # happens to align with the fixed client address by arithmetic luck
    proc = UserProcess(kernel, "reader")
    fd = proc.open("/data/file")        # warm the channel + metadata
    tracer = Tracer(kernel).attach()
    proc.read_file_page(fd, 0)          # the traced operation
    tracer.detach()
    proc.close(fd)
    return tracer


def show(policy_name: str) -> None:
    tracer = trace_one_read(policy_name)
    policy = by_name(policy_name)
    print(f"=== one read() under configuration {policy.name} "
          f"({policy.description}) ===")
    for event in tracer.events:
        print(f"  {event}")
    summary = tracer.summary()
    print(f"  -- {len(tracer.events)} events: "
          + ", ".join(f"{k}={v}" for k, v in sorted(summary.items())
                      if ":" not in k))
    print()


if __name__ == "__main__":
    show("B")   # lazy but unaligned: flushes and purges on the path
    show("F")   # aligned everywhere: the same read, almost eventless
