#!/usr/bin/env python3
"""Aliases and alignment: the paper's Section 2 problem, live.

Two tasks share one physical page at different virtual addresses.  When
the addresses *align* in the cache (select the same cache page), the
physically tagged cache resolves them to the same lines and writes cost
~2 cycles.  When they do not align, every alternation is a consistency
fault: the dirty cache page is flushed and the stale one purged — the
Section 2.5 contrived benchmark's three-orders-of-magnitude slowdown.

Run:  python examples/shared_memory_aliases.py
"""

from repro import Kernel, NEW_SYSTEM
from repro.core.states import LineState
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.vm_object import Backing, VMObject
from repro.workloads.microbench import run_alias_write_loop


def show_states(kernel, ppage, label):
    """Print the consistency state of every cache page for one frame."""
    state = kernel.pmap.state_of(ppage)
    states = "".join(str(state.decode(c))
                     for c in range(min(8, state.num_cache_pages)))
    print(f"  {label:<40} cache pages [{states}...] "
          f"(E=empty P=present D=dirty S=stale)")


def walk_through() -> None:
    print("=== watching the consistency state machine ===")
    kernel = Kernel(policy=NEW_SYSTEM)
    ncp = kernel.machine.dcache.geo.num_cache_pages
    writer = UserProcess(kernel, "writer")
    reader = UserProcess(kernel, "reader")

    page = VMObject(1, Backing.ZERO_FILL)
    va_w = writer.task.map_shared(page, Prot.READ_WRITE, color=2)
    va_r = reader.task.map_shared(page, Prot.READ_WRITE, color=3)  # unaligned
    print(f"writer maps at vpage {va_w} (cache page {va_w % ncp}), "
          f"reader at vpage {va_r} (cache page {va_r % ncp})")

    writer.task.write(va_w, 0, 0xAB)
    frame = page.resident_page(0)
    show_states(kernel, frame, "after writer stores 0xAB:")

    value = reader.task.read(va_r, 0)
    show_states(kernel, frame, f"after reader loads (got {value:#x}):")
    assert value == 0xAB

    writer.task.write(va_w, 0, 0xCD)
    show_states(kernel, frame, "after writer stores again:")
    print(f"  reader now sees {reader.task.read(va_r, 0):#x} "
          "(consistency fault flushed + purged behind the scenes)\n")
    writer.exit()
    reader.exit()


def race_the_loop() -> None:
    print("=== the Section 2.5 write loop ===")
    iterations = 5000
    for aligned in (True, False):
        kernel = Kernel(policy=NEW_SYSTEM)
        result = run_alias_write_loop(kernel, iterations, aligned=aligned)
        kind = "aligned  " if aligned else "unaligned"
        print(f"  {kind}: {result.cycles_per_write:>7.1f} cycles/write, "
              f"{result.consistency_faults:>5} faults, "
              f"{result.page_flushes:>5} flushes, "
              f"{result.page_purges:>5} purges")
    print("  (the paper: 'a fraction of a second' vs 'over 2 minutes')")


if __name__ == "__main__":
    walk_through()
    race_the_loop()
