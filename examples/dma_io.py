#!/usr/bin/env python3
"""DMA and the write-back cache: why devices need flushes and purges.

The disk does not snoop the cache (Section 1.1), so:

* before the device *reads* memory (a file write), dirty cache data must
  be flushed or the platter gets stale bytes;
* around the device *writing* memory (a file read), cached copies must
  be purged/staled or the CPU keeps seeing pre-DMA data.

This example performs both transfers correctly, then — in a sandboxed
kernel with the oracle in recording mode — deliberately skips the
preparation to show the stale transfer being caught.

Run:  python examples/dma_io.py
"""

import numpy as np

from repro import Kernel, NEW_SYSTEM
from repro.kernel.process import UserProcess, fresh_tokens


def managed_transfers() -> None:
    print("=== managed DMA (what the pmap does for you) ===")
    kernel = Kernel(policy=NEW_SYSTEM)
    proc = UserProcess(kernel, "dma-demo")

    # File write: CPU data reaches the platter through flush + DMA-read.
    proc.create("/data/out")
    fd = proc.open("/data/out")
    values = fresh_tokens(1024)
    proc.write_file_page(fd, 0, values)
    proc.close(fd)
    kernel.shutdown()   # push write-behind blocks to disk
    meta = kernel.fs.lookup("/data/out")
    on_disk = kernel.disk.block(meta.file_id, 0)
    print(f"  platter matches CPU writes: {np.array_equal(on_disk, values)}")

    # File read: device data reaches the CPU through DMA-write + purge.
    kernel.fs.create("/data/in", size_pages=1, on_disk=True)
    fd = proc.open("/data/in")
    got = proc.read_file_page(fd, 0)
    print(f"  CPU sees device data:       "
          f"{np.array_equal(got, kernel.disk.block(kernel.fs.lookup('/data/in').file_id, 0))}")
    print(f"  dma_reads={kernel.machine.counters.dma_reads}, "
          f"dma_writes={kernel.machine.counters.dma_writes}, "
          f"oracle violations={len(kernel.machine.oracle.violations)}")
    proc.exit()


def sabotaged_transfer() -> None:
    print("\n=== sabotaged DMA (skipping the flush) ===")
    kernel = Kernel(policy=NEW_SYSTEM)
    kernel.machine.oracle.record_only = True   # observe, don't raise
    proc = UserProcess(kernel, "sabotage")

    vpage = proc.task.allocate_anon(1)
    proc.task.write(vpage, 0, 0xBEEF)          # dirty in the cache only
    frame = kernel.pmap.page_table(proc.task.asid).lookup(vpage).ppage

    # Schedule the device WITHOUT pmap.prepare_dma_read(frame):
    observed = kernel.machine.dma.dma_read(frame)
    violation = kernel.machine.oracle.violations[0]
    print(f"  device read {int(observed[0]):#x} where the CPU wrote 0xbeef")
    print(f"  oracle caught it: {violation}")
    print("  (the pmap's prepare_dma_read flush is what prevents this)")


if __name__ == "__main__":
    managed_transfers()
    sabotaged_transfer()
