#!/usr/bin/env python3
"""Section 3.3: the consistency model applied to other architectures.

The four-state model specializes cleanly: write-through caches lose the
Dirty state and the Flush operation; physically indexed caches lose the
whole "other unaligned lines" column; DMA through the cache folds the
device operations into the CPU rules.  This example derives each variant
and runs a common scenario through all of them, printing the actions
each architecture requires — and backs it with hardware: the same write
hazard demo on a write-through and a physically indexed cache simulator.

Run:  python examples/other_architectures.py
"""

from repro.core.model import ConsistencyModel
from repro.core.states import MemoryOp
from repro.core.variants import (DmaThroughCacheModel, PhysicallyIndexedModel,
                                 WriteThroughModel, multiprocessor_note,
                                 set_associative_note)
from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters

SCENARIO = [
    ("CPU-write through va A", MemoryOp.CPU_WRITE, 0),
    ("CPU-read through unaligned va B", MemoryOp.CPU_READ, 1),
    ("CPU-write through va B", MemoryOp.CPU_WRITE, 1),
    ("device reads the page (DMA-read)", MemoryOp.DMA_READ, None),
    ("device writes the page (DMA-write)", MemoryOp.DMA_WRITE, None),
    ("CPU-read through va A again", MemoryOp.CPU_READ, 0),
]


def run_model(name, model, fold_dma_target=False):
    print(f"--- {name} ---")
    for label, op, target in SCENARIO:
        if isinstance(model, PhysicallyIndexedModel):
            actions = model.apply(op)
        elif op.is_dma and fold_dma_target:
            actions = model.apply(op, 1)   # device window aligns with B
        elif op.is_dma:
            actions = model.apply(op)
        else:
            actions = model.apply(op, target)
        cost = ", ".join(str(a) for a in actions) or "nothing"
        print(f"  {label:<38} -> {cost}")
    print()


def hardware_demo():
    print("--- hardware check: the write hazard per architecture ---")
    for label, geo in [
            ("VI write-back", CacheGeometry(size=16 * 1024)),
            ("VI write-through", CacheGeometry(size=16 * 1024,
                                               write_through=True)),
            ("PI write-back", CacheGeometry(size=16 * 1024,
                                            physically_indexed=True))]:
        mem = PhysicalMemory(8, 4096)
        cache = Cache(geo, mem, CostModel(), Clock(), Counters())
        cache.write(0, 0, 0xAA)             # store through va 0
        via_alias = cache.read(4096, 0)     # load through unaligned alias
        hazard = "STALE!" if via_alias != 0xAA else "consistent"
        print(f"  {label:<18} unmanaged aliased read sees "
              f"{via_alias:#4x} -> {hazard}")
    print("  (only the virtually indexed write-back case needs the full "
          "management machinery)\n")


if __name__ == "__main__":
    run_model("virtually indexed, write-back (the 720)",
              ConsistencyModel(4))
    run_model("virtually indexed, write-through", WriteThroughModel(4))
    run_model("physically indexed, write-back", PhysicallyIndexedModel())
    run_model("DMA through the cache", DmaThroughCacheModel(4),
              fold_dma_target=True)
    print(set_associative_note())
    print(multiprocessor_note())
    print()
    hardware_demo()
