#!/usr/bin/env python3
"""A tour of the extensions beyond the paper's core evaluation.

Four pieces the paper discusses but does not measure, built out and
demonstrated here:

1. **Global address space** (Section 2.1's alternative model): sharing
   aligns by construction, so alias faults vanish without any of the
   Section 4.2 address-selection machinery.
2. **Uncached aliases** (the Sun system's fallback, Section 6): an
   unaligned alias set bypasses the cache — no faults at all, at
   memory-speed per access.
3. **Pageout to swap**: memory pressure drives pages to disk through the
   DMA-read rules and back through the DMA-write/new-mapping rules.
4. **Cache-coherent multiprocessor** (Section 3.3): hardware resolves
   aligned sharing between CPUs; unaligned aliasing remains the software
   model's job — unchanged.

Run:  python examples/extensions_tour.py
"""

from repro import CONFIG_GLOBAL, Kernel, MachineConfig, NEW_SYSTEM, by_name
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster
from repro.hw.stats import Clock, Counters, FaultKind
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.vm_object import VMObject


def global_address_space() -> None:
    print("=== 1. global address space (Section 2.1) ===")
    kernel = Kernel(policy=CONFIG_GLOBAL)
    a = kernel.create_task("a")
    b = kernel.create_task("b")
    obj = VMObject(1)
    vpage = a.map_shared(obj, Prot.READ_WRITE)
    assert b.map_shared(obj, Prot.READ_WRITE) == vpage
    a.write(vpage, 0, 1)
    b.read(vpage, 0)
    a.write(vpage, 0, 2)
    before = kernel.machine.counters.faults[FaultKind.CONSISTENCY]
    for i in range(1000):
        a.write(vpage, 0, i)
        b.read(vpage, 0)
    faults = kernel.machine.counters.faults[FaultKind.CONSISTENCY] - before
    print(f"  one page, one address, two tasks: 1000 exchanges, "
          f"{faults} consistency faults\n")


def uncached_aliases() -> None:
    print("=== 2. uncached aliases (the Sun fallback) ===")
    kernel = Kernel(policy=by_name("Sun"))
    proc = UserProcess(kernel, "p")
    obj = VMObject(1)
    va1 = proc.task.map_shared(obj, Prot.READ_WRITE, color=1)
    va2 = proc.task.map_shared(obj, Prot.READ_WRITE, color=2)  # unaligned
    proc.task.write(va1, 0, 1)
    proc.task.read(va2, 0)   # conversion happens here
    t0 = kernel.machine.clock.cycles
    for i in range(500):
        proc.task.write(va1, 0, i)
        assert proc.task.read(va2, 0) == i
    cycles = (kernel.machine.clock.cycles - t0) / 1000
    print(f"  unaligned ping-pong, uncached: {cycles:.1f} cycles/access, "
          f"{kernel.machine.counters.pages_made_uncached} page(s) converted")
    print("  (compare ~650 cycles/write for the trap-and-flush path)\n")


def pageout() -> None:
    print("=== 3. pageout under memory pressure ===")
    kernel = Kernel(policy=NEW_SYSTEM,
                    config=MachineConfig(phys_pages=40),
                    buffer_cache_pages=8)
    proc = UserProcess(kernel, "hog")
    vpages = []
    for batch in range(8):
        vpage = proc.task.allocate_anon(4)
        for i in range(4):
            proc.task.write(vpage + i, 0, batch * 10 + i)
        vpages.append(vpage)
        proc.create(f"/tick{batch}")
    print(f"  touched 32 pages on a 40-frame machine: "
          f"{kernel.pageout.pages_swapped_out} swapped out")
    ok = all(proc.task.read(vpage + i, 0) == batch * 10 + i
             for batch, vpage in enumerate(vpages) for i in range(4))
    print(f"  all values survive the round trip: {ok} "
          f"({kernel.pageout.pages_swapped_in} swapped back in)\n")


def multiprocessor() -> None:
    print("=== 4. coherent multiprocessor (Section 3.3) ===")
    geo = CacheGeometry(size=16 * 1024)
    cluster = CoherentCluster(2, geo, PhysicalMemory(8, 4096), CostModel(),
                              Clock(), Counters())
    cluster.write(0, 0, 0, 7)
    print(f"  cpu1 reads cpu0's dirty line (aligned): "
          f"{cluster.read(1, 0, 0)} — hardware coherence, "
          f"{cluster.coherence_writebacks} snoop write-back")
    cluster.write(0, 0, 0, 8)
    stale = cluster.read(1, 4096, 0)   # unaligned alias on cpu1
    print(f"  cpu1 reads through an UNALIGNED alias: {stale} (stale!) — "
          "the software model applies unchanged")
    # Table 2 for a CPU-read of a stale line: flush the dirty unaligned
    # line (cache page 0), purge the stale target (cache page 1) — both
    # cluster-wide on this hardware.
    from repro.hw.stats import Reason
    cluster.flush_page_frame(0, 0, Reason.ALIAS_READ)
    cluster.purge_page_frame(1, 0, Reason.ALIAS_READ)
    print(f"  after the model's flush + purge: "
          f"{cluster.read(1, 4096, 0)}")


if __name__ == "__main__":
    global_address_space()
    uncached_aliases()
    pageout()
    multiprocessor()
