#!/usr/bin/env python3
"""Run the paper's evaluation: Table 1, Table 4, Table 5 and the
alignment microbenchmark, regenerated end to end.

This is the whole Section 5 pipeline as a script.  Expect roughly a
minute of wall-clock time at the default scale.

Run:  python examples/policy_comparison.py [scale]
"""

import sys

from repro.analysis.experiments import (run_alignment_micro, run_table1,
                                        run_table4, run_table5_probe)
from repro.analysis.comparison import render_table5
from repro.analysis.tables import (render_micro, render_overhead_summary,
                                   render_table1, render_table4)


def main(scale: float = 0.5) -> None:
    print(f"(workload scale {scale}; see EXPERIMENTS.md for scale notes)\n")

    print(render_table1(run_table1(scale=scale)))
    print()

    results = run_table4(scale=scale)
    print(render_table4(results))
    print()
    print(render_overhead_summary([m[-1] for m in results.values()]))
    print()

    aligned, unaligned = run_alignment_micro(iterations=10_000)
    print(render_micro(aligned, unaligned))
    print()

    print(render_table5(run_table5_probe(scale=scale)))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
