#!/usr/bin/env python3
"""Quickstart: boot the simulated system, run a process, read the meters.

This walks the whole stack in a dozen lines: a kernel with the paper's
lazy consistency policy (configuration F), a Unix process doing file I/O
through the user-level server, and the counters the evaluation is built
from.  The staleness oracle runs throughout — if the consistency
machinery ever let a stale value through, this script would crash with
StaleDataError.

Run:  python examples/quickstart.py
"""

from repro import Kernel, NEW_SYSTEM
from repro.kernel.process import UserProcess


def main() -> None:
    # Boot a machine modeled on the HP 9000/720 (virtually indexed,
    # physically tagged, write-back data cache; non-snooping DMA).
    kernel = Kernel(policy=NEW_SYSTEM)
    print(f"booted with policy {kernel.policy.name!r}: "
          f"{kernel.policy.description}")
    geo = kernel.machine.dcache.geo
    print(f"dcache: {geo.size // 1024} KiB, {geo.num_cache_pages} cache "
          f"pages of {geo.page_size} bytes\n")

    # A pre-existing file on disk and a process to use it.
    kernel.fs.create("/home/paper.txt", size_pages=4, on_disk=True)
    proc = UserProcess(kernel, "demo")

    # Read the file (buffer cache + IPC page transfer under the hood).
    fd = proc.open("/home/paper.txt")
    for page in range(4):
        data = proc.read_file_page(fd, page)
        print(f"read page {page}: first words "
              f"{[hex(int(w)) for w in data[:3]]}")
    proc.close(fd)

    # Write a new file (IPC to the server, buffer cache, write-behind DMA).
    proc.create("/home/copy.txt")
    fd = proc.open("/home/copy.txt")
    proc.write_file_page(fd, 0)
    proc.close(fd)

    # Run a program: fork + exec, text pages copied from the buffer cache
    # into instruction space (the d->i flush/purge path).
    cc = kernel.exec_loader.register_program("cc", text_pages=3,
                                             data_pages=2)
    child = proc.spawn(cc, work_units=2)
    child.exit()

    proc.exit()
    kernel.shutdown()

    # The meters the paper's tables are made of.
    snap = kernel.machine.counters.snapshot()
    print(f"\nelapsed simulated time: {kernel.elapsed_seconds * 1000:.2f} ms"
          f" ({kernel.machine.clock.cycles} cycles at 50 MHz)")
    for key in ("page_flushes", "page_purges", "mapping_faults",
                "consistency_faults", "dma_reads", "dma_writes",
                "d_to_i_copies"):
        print(f"  {key:<20} {snap[key]}")
    oracle = kernel.machine.oracle
    print(f"\noracle: {oracle.checks} transfers checked, "
          f"{len(oracle.violations)} stale (must be 0)")


if __name__ == "__main__":
    main()
